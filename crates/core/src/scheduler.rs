//! The SDC scheduling LP: constraints, objective and solving.
//!
//! Given a delay matrix (naive for the baseline, feedback-updated for ISDC
//! iterations), this module builds the LP of paper §II and solves it exactly:
//!
//! - **dependencies** — an operand is scheduled no later than its user;
//! - **timing (Eq. 2)** — a pair whose critical-path delay exceeds the clock
//!   period is split across `ceil(D/Tclk)` cycles;
//! - **parameters** pinned to the first stage (inputs arrive with the
//!   transaction);
//! - **objective** — total register bits: `sum_v width(v) * (last_use_v -
//!   s_v)`, the metric Table I reports, linearized with one auxiliary
//!   last-use variable per value and a sink variable for graph outputs.

use crate::delay::{DelayMatrix, DirtySet};
use crate::schedule::Schedule;
use isdc_ir::{Graph, NodeId};
use isdc_sdc::{DifferenceSystem, IncrementalSolver, SolveError, VarId};
use isdc_techlib::Picos;
use std::fmt;

/// Errors from schedule construction.
#[derive(Clone, Debug, PartialEq)]
pub enum ScheduleError {
    /// The underlying LP failed (infeasible systems indicate a delay matrix
    /// inconsistency; unbounded indicates a malformed objective).
    Solver(SolveError),
    /// The graph has no nodes to schedule.
    EmptyGraph,
    /// An operation's own delay exceeds the clock period — no schedule can
    /// meet timing (the paper doubles the target period in this case).
    OperationExceedsClock {
        /// The offending node.
        node: NodeId,
        /// The node's characterized delay.
        delay_ps: Picos,
        /// The clock period it does not fit in.
        clock_period_ps: Picos,
    },
    /// The requested latency bound is tighter than timing allows.
    LatencyUnachievable {
        /// The requested maximum pipeline stages.
        max_stages: u32,
    },
    /// A deterministic fault-injection hook fired (chaos testing only —
    /// see `isdc_faults`). Treated as a *transient* failure by the batch
    /// engine's retry policy, unlike the real solver errors above.
    Injected {
        /// The injection site that fired (e.g. `solver/drain`).
        site: &'static str,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Solver(e) => write!(f, "lp solver: {e}"),
            ScheduleError::EmptyGraph => f.write_str("cannot schedule an empty graph"),
            ScheduleError::OperationExceedsClock { node, delay_ps, clock_period_ps } => write!(
                f,
                "operation {node} delay {delay_ps}ps exceeds clock period {clock_period_ps}ps"
            ),
            ScheduleError::LatencyUnachievable { max_stages } => {
                write!(f, "no schedule meets timing within {max_stages} pipeline stages")
            }
            ScheduleError::Injected { site } => {
                write!(f, "injected fault at {site}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<SolveError> for ScheduleError {
    fn from(e: SolveError) -> Self {
        ScheduleError::Solver(e)
    }
}

/// Builds and solves the SDC LP against the given delay matrix.
///
/// This one function serves both the baseline (naive matrix) and every ISDC
/// iteration (feedback-updated matrix) — exactly the reformulation loop of
/// paper §III-D.
///
/// # Errors
///
/// See [`ScheduleError`].
///
/// # Examples
///
/// ```
/// use isdc_core::{schedule_with_matrix, DelayMatrix};
/// use isdc_ir::{Graph, OpKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = Graph::new("t");
/// let a = g.param("a", 8);
/// let b = g.param("b", 8);
/// let x = g.binary(OpKind::Add, a, b)?;
/// let y = g.binary(OpKind::Mul, x, x)?;
/// g.set_output(y);
/// // add takes 600ps, mul 900ps, clock 1000ps: they cannot chain.
/// let delays = DelayMatrix::initialize(&g, &[0.0, 0.0, 600.0, 900.0]);
/// let schedule = schedule_with_matrix(&g, &delays, 1000.0)?;
/// assert_eq!(schedule.num_stages(), 2);
/// # Ok(())
/// # }
/// ```
pub fn schedule_with_matrix(
    graph: &Graph,
    delays: &DelayMatrix,
    clock_period_ps: Picos,
) -> Result<Schedule, ScheduleError> {
    schedule_with_options(graph, delays, &ScheduleOptions { clock_period_ps, max_stages: None })
}

/// Scheduling knobs beyond the clock period.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScheduleOptions {
    /// Target clock period in picoseconds.
    pub clock_period_ps: Picos,
    /// Optional upper bound on pipeline depth (like XLS's `pipeline_stages`
    /// option). `None` leaves depth to the register objective.
    pub max_stages: Option<u32>,
}

/// [`schedule_with_matrix`] with explicit [`ScheduleOptions`].
///
/// # Errors
///
/// In addition to [`schedule_with_matrix`]'s errors, returns
/// [`ScheduleError::LatencyUnachievable`] when `max_stages` contradicts the
/// timing constraints.
pub fn schedule_with_options(
    graph: &Graph,
    delays: &DelayMatrix,
    options: &ScheduleOptions,
) -> Result<Schedule, ScheduleError> {
    let built = build_lp(graph, delays, options)?;
    // Move the system into the solver instead of going through `minimize`,
    // which would clone the O(n^2)-constraint system it is handed by ref.
    let solution = IncrementalSolver::new(built.sys, built.weights)
        .and_then(|mut solver| solver.solve())
        .map_err(|e| map_solve_error(e, options.max_stages))?;
    Ok(solution_to_schedule(graph, &solution.assignment))
}

/// Sentinel in the timing-pair index: no constraint emitted for this pair.
const NO_CONSTRAINT: usize = usize::MAX;

/// Sentinel in the per-pair bound cache for bounds outside `i8` range (the
/// cache then always falls through to the slow path for that pair).
const BOUND_UNCACHED: i8 = i8::MIN;

/// Compresses a timing bound into the pair cache's `i8` domain.
fn cache_bound(bound: i64) -> i8 {
    if bound > i64::from(i8::MIN) {
        bound as i8
    } else {
        BOUND_UNCACHED
    }
}

/// The SDC LP plus the bookkeeping the incremental engine needs: which
/// constraint (if any) encodes the timing bound of each node pair.
struct BuiltLp {
    sys: DifferenceSystem,
    weights: Vec<i64>,
    /// `u * n + v` -> timing constraint index, [`NO_CONSTRAINT`] if absent.
    timing_ids: Vec<usize>,
    /// `u * n + v` -> the currently-emitted bound (0 for pairs without a
    /// constraint), compressed to `i8`. Dirty-pair and retarget scans
    /// compare against this before touching the solver: the common case —
    /// a delay dropped without leaving its `ceil(d/Tclk)` bucket — then
    /// costs one byte-compare instead of two random lookups into
    /// constraint storage.
    bounds: Vec<i8>,
}

/// Eq. 2's bound for a pair with critical-path delay `d`: split across
/// `ceil(d / Tclk)` stages. Nonpositive whenever `d > Tclk`; pairs at or
/// under the clock need no constraint (encoded as bound 0, which dependency
/// transitivity already implies for connected pairs).
fn timing_bound(d: Picos, clock_period_ps: Picos) -> i64 {
    if d <= clock_period_ps {
        return 0;
    }
    let stages_needed = (d / clock_period_ps - 1e-9).ceil() as i64;
    (-(stages_needed - 1)).min(0)
}

/// Builds the full SDC LP of paper §II for the given delay matrix.
fn build_lp(
    graph: &Graph,
    delays: &DelayMatrix,
    options: &ScheduleOptions,
) -> Result<BuiltLp, ScheduleError> {
    let clock_period_ps = options.clock_period_ps;
    let n = graph.len();
    if n == 0 {
        return Err(ScheduleError::EmptyGraph);
    }
    for v in graph.node_ids() {
        let d = delays.node_delay(v);
        if d > clock_period_ps {
            return Err(ScheduleError::OperationExceedsClock {
                node: v,
                delay_ps: d,
                clock_period_ps,
            });
        }
    }

    // Variable layout: [0, n) node cycles; [n, 2n) last-use; 2n sink.
    let x = |v: NodeId| VarId(v.0);
    let m = |v: NodeId| VarId((n + v.index()) as u32);
    let sink = VarId(2 * n as u32);
    let mut sys = DifferenceSystem::new(2 * n + 1);
    let mut weights = vec![0i64; 2 * n + 1];
    let mut timing_ids = vec![NO_CONSTRAINT; n * n];
    let mut bounds = vec![0i8; n * n];

    // Dependencies: x_p <= x_v.
    for (v, node) in graph.iter() {
        for &p in &node.operands {
            sys.add_constraint(x(p), x(v), 0);
        }
    }

    // Timing (Eq. 2): pairs whose critical-path delay exceeds Tclk.
    for u in graph.node_ids() {
        for v in graph.node_ids() {
            let Some(d) = delays.get(u, v) else { continue };
            let bound = timing_bound(d, clock_period_ps);
            if bound < 0 {
                timing_ids[u.index() * n + v.index()] = sys.add_constraint(x(u), x(v), bound);
                bounds[u.index() * n + v.index()] = cache_bound(bound);
            }
        }
    }

    // Parameters arrive together in the first stage and precede everything.
    if let Some(&p0) = graph.params().first() {
        for &p in &graph.params()[1..] {
            sys.add_constraint(x(p), x(p0), 0);
            sys.add_constraint(x(p0), x(p), 0);
        }
        for v in graph.node_ids() {
            if v != p0 {
                sys.add_constraint(x(p0), x(v), 0);
            }
        }
    }

    // Sink: after every node; the pseudo-last-use of graph outputs.
    for v in graph.node_ids() {
        sys.add_constraint(x(v), sink, 0);
    }

    // Optional latency bound: the whole pipeline fits in max_stages cycles.
    if let Some(max_stages) = options.max_stages {
        if max_stages == 0 {
            return Err(ScheduleError::LatencyUnachievable { max_stages });
        }
        if let Some(&p0) = graph.params().first() {
            // sink - p0 <= max_stages - 1.
            sys.add_constraint(sink, x(p0), i64::from(max_stages) - 1);
        }
    }

    // Register-lifetime objective.
    for (v, node) in graph.iter() {
        let users = graph.users(v);
        let is_output = graph.outputs().contains(&v);
        if users.is_empty() && !is_output {
            continue; // dead value: no register cost
        }
        for &u in users {
            sys.add_constraint(x(u), m(v), 0); // m_v >= x_u
        }
        if is_output {
            sys.add_constraint(sink, m(v), 0); // m_v >= sink
        } else {
            // Guarantee m_v >= x_v even if all users chain in-stage.
            sys.add_constraint(x(v), m(v), 0);
        }
        let w = node.width as i64;
        weights[m(v).index()] += w;
        weights[x(v).index()] -= w;
    }

    Ok(BuiltLp { sys, weights, timing_ids, bounds })
}

fn map_solve_error(e: SolveError, max_stages: Option<u32>) -> ScheduleError {
    match (&e, max_stages) {
        (SolveError::Infeasible { .. }, Some(max_stages)) => {
            ScheduleError::LatencyUnachievable { max_stages }
        }
        _ => ScheduleError::Solver(e),
    }
}

/// Normalizes an LP assignment into a schedule: params (or the global
/// minimum) define stage 0.
fn solution_to_schedule(graph: &Graph, assignment: &[i64]) -> Schedule {
    let n = graph.len();
    let base = graph
        .params()
        .first()
        .map(|&p| assignment[p.index()])
        .unwrap_or_else(|| (0..n).map(|i| assignment[i]).min().unwrap_or(0));
    let cycles: Vec<u32> = (0..n)
        .map(|i| {
            let c = assignment[i] - base;
            debug_assert!(c >= 0, "node scheduled before the first stage");
            c as u32
        })
        .collect();
    Schedule::new(cycles)
}

/// A scheduler that persists the SDC LP across ISDC iterations.
///
/// [`schedule_with_options`] rebuilds the difference system — all `O(n^2)`
/// timing pairs included — and cold-solves it on every call. This engine
/// builds the system once, then per iteration re-emits only the timing
/// bounds of pairs in the delay matrix's [`DirtySet`] and re-solves through
/// a warm-started [`IncrementalSolver`].
///
/// Because Alg. 1 keeps delay updates monotonically non-increasing, those
/// re-emitted bounds are relaxations, so the warm path applies; any
/// non-monotone input (a pair that suddenly *needs* a constraint it never
/// had, or a tightened bound) falls back to a from-scratch rebuild or cold
/// solve. Either way the result is bit-identical to
/// [`schedule_with_options`] on the same matrix.
#[derive(Clone, Debug)]
pub struct IncrementalScheduler {
    options: ScheduleOptions,
    n: usize,
    solver: IncrementalSolver,
    timing_ids: Vec<usize>,
    /// Currently-emitted bound per pair, `i8`-compressed (see
    /// [`BuiltLp::bounds`]); the scans' fast reject.
    bound_cache: Vec<i8>,
    rebuilt: bool,
    /// Set by [`IncrementalScheduler::retarget`] when the new period needs
    /// timing constraints the system never emitted; the next
    /// [`IncrementalScheduler::reschedule`] rebuilds before solving.
    stale: bool,
}

impl IncrementalScheduler {
    /// Builds the LP for `graph` against `delays` and primes the solver.
    ///
    /// # Errors
    ///
    /// See [`schedule_with_options`].
    pub fn new(
        graph: &Graph,
        delays: &DelayMatrix,
        options: &ScheduleOptions,
    ) -> Result<Self, ScheduleError> {
        let built = build_lp(graph, delays, options)?;
        let solver = IncrementalSolver::new(built.sys, built.weights)
            .map_err(|e| map_solve_error(e, options.max_stages))?;
        Ok(Self {
            options: *options,
            n: graph.len(),
            solver,
            timing_ids: built.timing_ids,
            bound_cache: built.bounds,
            rebuilt: false,
            stale: false,
        })
    }

    /// Re-solves after delay-matrix changes covered by `dirty`, reusing the
    /// persistent system and solver state. `delays` must be the same matrix
    /// the engine was built against, mutated only through entries recorded
    /// in `dirty` since the previous call.
    ///
    /// # Errors
    ///
    /// See [`schedule_with_options`]. Monotone (relaxing-only) updates can
    /// never make the system infeasible.
    pub fn reschedule(
        &mut self,
        graph: &Graph,
        delays: &DelayMatrix,
        dirty: &DirtySet,
    ) -> Result<Schedule, ScheduleError> {
        self.rebuilt = false;
        for v in graph.node_ids() {
            let d = delays.node_delay(v);
            if d > self.options.clock_period_ps {
                return Err(ScheduleError::OperationExceedsClock {
                    node: v,
                    delay_ps: d,
                    clock_period_ps: self.options.clock_period_ps,
                });
            }
        }
        if self.stale {
            // A retarget demanded constraints the system never emitted:
            // rebuild below instead of patching bounds pair by pair.
            self.rebuilt = true;
        } else {
            // The dirty set records every written entry as an exact pair,
            // so only true writes are revisited (repeats are no-ops: the
            // second visit sees the already-updated bound). The historical
            // alternative — scanning the rows x cols product — re-derived
            // bounds for quadratically many untouched pairs on
            // window-shaped feedback.
            let mut implied: Vec<usize> = Vec::new();
            for (u, v) in dirty.pairs() {
                let Some(d) = delays.get(u, v) else { continue };
                let bound = timing_bound(d, self.options.clock_period_ps);
                let at = u.index() * self.n + v.index();
                let compressed = cache_bound(bound);
                if compressed != BOUND_UNCACHED && compressed == self.bound_cache[at] {
                    continue; // same ceil bucket as already emitted
                }
                let id = self.timing_ids[at];
                if id != NO_CONSTRAINT {
                    if bound != self.solver.bound(id) {
                        // Relaxations stay warm; a tightened bound makes
                        // the solver fall back to its cold path on its own.
                        self.solver.update_bound(id, bound);
                    }
                    self.bound_cache[at] = compressed;
                    if bound == 0 {
                        // Relaxed all the way to "no split needed": the
                        // constraint is now implied by dependency
                        // transitivity (every timing pair is a connected
                        // pair, and the operand-edge 0-bounds chain from u
                        // to v), so its canonicalization edge can be
                        // pruned.
                        implied.push(id);
                    }
                } else if bound < 0 {
                    // The pair never needed a timing constraint and now
                    // does: a delay estimate *grew*, outside the monotone
                    // contract. Rebuild the whole system from the matrix.
                    self.rebuilt = true;
                    break;
                }
            }
            if !self.rebuilt {
                self.solver.mark_implied(&implied);
            }
        }
        if self.rebuilt {
            // One full rebuild covers both triggers (also clearing `stale`
            // via the fresh engine); re-flag the cold signal `Self::new`
            // resets.
            *self = Self::new(graph, delays, &self.options)?;
            self.rebuilt = true;
        }
        let solution =
            self.solver.solve().map_err(|e| map_solve_error(e, self.options.max_stages))?;
        Ok(solution_to_schedule(graph, &solution.assignment))
    }

    /// Whether the most recent [`IncrementalScheduler::reschedule`] re-used
    /// warm solver state end to end (false after any cold fallback or full
    /// rebuild).
    pub fn last_solve_was_warm(&self) -> bool {
        !self.rebuilt && self.solver.last_solve_was_warm()
    }

    /// Drain counters of the most recent solve (see
    /// [`isdc_sdc::DrainStats`]): how many Dijkstra passes the SSP drain
    /// ran and how many augmenting paths they delivered. On a bulk
    /// retarget the batched drain keeps `dijkstras` far below `paths`.
    pub fn last_drain_stats(&self) -> isdc_sdc::DrainStats {
        self.solver.last_drain_stats()
    }

    /// Routes solves through the retained serial reference drain
    /// (test/bench hook; see
    /// [`isdc_sdc::IncrementalSolver::use_reference_drain`]).
    #[doc(hidden)]
    pub fn use_reference_drain(&mut self, on: bool) {
        self.solver.use_reference_drain(on);
    }

    /// Exports the solver's node potentials after a solve — the cross-run
    /// warm-start currency: `-potentials` is the optimal LP assignment, and
    /// [`IncrementalScheduler::warm_from_potentials`] on a *fresh* engine
    /// (same design, this or a neighbouring clock period) re-seeds from it.
    pub fn potentials(&self) -> Option<Vec<i64>> {
        self.solver.potentials()
    }

    /// Re-targets the engine to a new clock period by re-emitting every
    /// timing bound of `delays` (Eq. 2) at `clock_period_ps` — the
    /// strongest cross-run reuse an [`IsdcSession`](crate::IsdcSession)
    /// sweep has: the whole difference system, flow and potentials survive
    /// the period change.
    ///
    /// `delays` must be the matrix the engine's bounds currently encode
    /// (for a session, the naive matrix its initial solve ran against).
    /// Eq. 2's bound is monotone in the period, so moving to a *longer*
    /// period relaxes every bound and the next solve stays warm; a shorter
    /// period tightens bounds (the next solve falls back cold) and may
    /// demand constraints that were never emitted, which marks the engine
    /// stale — the next [`IncrementalScheduler::reschedule`] rebuilds it
    /// from scratch (after its usual feasibility check, so an infeasible
    /// period surfaces as the ordinary error without consuming the
    /// engine). Either way the subsequent schedule is bit-identical to a
    /// fresh engine's.
    pub fn retarget(&mut self, graph: &Graph, delays: &DelayMatrix, clock_period_ps: Picos) {
        self.options.clock_period_ps = clock_period_ps;
        let mut implied: Vec<usize> = Vec::new();
        'scan: for u in graph.node_ids() {
            for v in graph.node_ids() {
                let Some(d) = delays.get(u, v) else { continue };
                let bound = timing_bound(d, clock_period_ps);
                let at = u.index() * self.n + v.index();
                let compressed = cache_bound(bound);
                if compressed != BOUND_UNCACHED && compressed == self.bound_cache[at] {
                    continue; // the new period lands in the same ceil bucket
                }
                let id = self.timing_ids[at];
                if id != NO_CONSTRAINT {
                    if bound != self.solver.bound(id) {
                        self.solver.update_bound(id, bound);
                    }
                    self.bound_cache[at] = compressed;
                    if bound == 0 {
                        // Bound relaxed away entirely: implied by the
                        // dependency chain from u to v (timing pairs are
                        // connected pairs), so the canonicalization stops
                        // paying for the tighter period's constraint
                        // superset at this looser period.
                        implied.push(id);
                    }
                } else if bound < 0 {
                    self.stale = true;
                    break 'scan;
                }
            }
        }
        if !self.stale {
            self.solver.mark_implied(&implied);
        }
    }

    /// Seeds the engine's first solve from previously-exported potentials
    /// (see [`isdc_sdc::IncrementalSolver::warm_from_potentials`]). Returns
    /// false and changes nothing when the import does not validate against
    /// the current LP — schedules are bit-identical either way, so callers
    /// treat this as a pure speed hint.
    pub fn warm_from_potentials(&mut self, pi: &[i64]) -> bool {
        self.solver.warm_from_potentials(pi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isdc_ir::OpKind;

    fn mac_graph() -> (Graph, [NodeId; 5]) {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let b = g.param("b", 8);
        let c = g.param("c", 8);
        let p = g.binary(OpKind::Mul, a, b).unwrap();
        let s = g.binary(OpKind::Add, p, c).unwrap();
        g.set_output(s);
        (g, [a, b, c, p, s])
    }

    #[test]
    fn everything_chains_when_timing_allows() {
        let (g, _) = mac_graph();
        let d = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 400.0, 300.0]);
        let schedule = schedule_with_matrix(&g, &d, 1000.0).unwrap();
        assert_eq!(schedule.num_stages(), 1);
        assert_eq!(schedule.register_bits(&g), 0);
    }

    #[test]
    fn timing_splits_stages() {
        let (g, [_, _, _, p, s]) = mac_graph();
        // 400 + 700 = 1100 > 1000: mul and add must separate.
        let d = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 400.0, 700.0]);
        let schedule = schedule_with_matrix(&g, &d, 1000.0).unwrap();
        assert_eq!(schedule.num_stages(), 2);
        assert!(schedule.cycle(p) < schedule.cycle(s));
        assert_eq!(schedule.first_dependency_violation(&g), None);
    }

    #[test]
    fn long_paths_split_multiple_times() {
        // Chain of four 400ps ops at 1000ps: pairs chain (800), triples do
        // not (1200) — two ops per stage, two stages.
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let mut prev = a;
        for _ in 0..4 {
            prev = g.unary(OpKind::Not, prev).unwrap();
        }
        g.set_output(prev);
        let d = DelayMatrix::initialize(&g, &[0.0, 400.0, 400.0, 400.0, 400.0]);
        let schedule = schedule_with_matrix(&g, &d, 1000.0).unwrap();
        assert_eq!(schedule.num_stages(), 2);
        // And with 600ps ops even pairs cannot chain: one op per stage.
        let d = DelayMatrix::initialize(&g, &[0.0, 600.0, 600.0, 600.0, 600.0]);
        let schedule = schedule_with_matrix(&g, &d, 1000.0).unwrap();
        assert_eq!(schedule.num_stages(), 4);
    }

    #[test]
    fn objective_minimizes_register_bits() {
        // A narrow input feeding a wide intermediate: producing the wide
        // value early would buffer 32 bits across the stage boundary, while
        // deferring it only buffers the 8-bit input. The LP must defer.
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let b = g.param("b", 32);
        let c = g.param("c", 32);
        let slow = g.binary(OpKind::Mul, b, c).unwrap(); // 900ps
        let e = g.unary(OpKind::ZeroExt { new_width: 32 }, a).unwrap(); // free
        let wide = g.binary(OpKind::Mul, e, e).unwrap(); // 100ps, 32 bits
        let out = g.binary(OpKind::Xor, slow, wide).unwrap(); // 200ps
        g.set_output(out);
        let d = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 900.0, 0.0, 100.0, 200.0]);
        let schedule = schedule_with_matrix(&g, &d, 1000.0).unwrap();
        // slow -> out is 1100ps: two stages. wide chains with out in the
        // second stage, so only `a` (8 bits) crosses besides slow's
        // unavoidable 32-bit register.
        assert_eq!(schedule.num_stages(), 2);
        assert_eq!(schedule.cycle(wide), schedule.cycle(out));
        assert_eq!(schedule.register_bits(&g), 32 + 8);
    }

    #[test]
    fn params_pinned_to_stage_zero() {
        let (g, [a, b, c, _, _]) = mac_graph();
        let d = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 900.0, 900.0]);
        let schedule = schedule_with_matrix(&g, &d, 1000.0).unwrap();
        assert_eq!(schedule.cycle(a), 0);
        assert_eq!(schedule.cycle(b), 0);
        assert_eq!(schedule.cycle(c), 0);
    }

    #[test]
    fn oversized_operation_rejected() {
        let (g, _) = mac_graph();
        let d = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 2700.0, 100.0]);
        let err = schedule_with_matrix(&g, &d, 2500.0).unwrap_err();
        assert!(matches!(err, ScheduleError::OperationExceedsClock { delay_ps, .. }
            if delay_ps == 2700.0));
    }

    #[test]
    fn empty_graph_rejected() {
        let g = Graph::new("empty");
        let d = DelayMatrix::initialize(&g, &[]);
        assert_eq!(schedule_with_matrix(&g, &d, 1000.0).unwrap_err(), ScheduleError::EmptyGraph);
    }

    #[test]
    fn feedback_updated_matrix_reduces_stages() {
        // The paper's Fig. 2 scenario: naive estimate forces a split, the
        // downstream-reported delay lets ops merge back into one cycle.
        let (g, [_, _, _, p, s]) = mac_graph();
        let mut d = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 700.0, 500.0]);
        let before = schedule_with_matrix(&g, &d, 1000.0).unwrap();
        assert_eq!(before.num_stages(), 2);
        // Downstream synthesis reports the {p, s} subgraph fits in 900ps.
        d.apply_subgraph_feedback(&[p, s], 900.0);
        d.reformulate(&g);
        let after = schedule_with_matrix(&g, &d, 1000.0).unwrap();
        assert_eq!(after.num_stages(), 1);
        assert!(after.register_bits(&g) < before.register_bits(&g));
    }

    #[test]
    fn loose_latency_bound_changes_nothing() {
        let (g, _) = mac_graph();
        let d = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 700.0, 500.0]);
        let unbounded = schedule_with_matrix(&g, &d, 1000.0).unwrap();
        let bounded = schedule_with_options(
            &g,
            &d,
            &ScheduleOptions { clock_period_ps: 1000.0, max_stages: Some(10) },
        )
        .unwrap();
        assert_eq!(unbounded, bounded);
    }

    #[test]
    fn exact_latency_bound_is_feasible() {
        let (g, _) = mac_graph();
        let d = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 700.0, 500.0]);
        let schedule = schedule_with_options(
            &g,
            &d,
            &ScheduleOptions { clock_period_ps: 1000.0, max_stages: Some(2) },
        )
        .unwrap();
        assert_eq!(schedule.num_stages(), 2);
    }

    #[test]
    fn unachievable_latency_reports_clearly() {
        let (g, _) = mac_graph();
        // 700 + 500 > 1000 forces two stages; demanding one must fail.
        let d = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 700.0, 500.0]);
        let err = schedule_with_options(
            &g,
            &d,
            &ScheduleOptions { clock_period_ps: 1000.0, max_stages: Some(1) },
        )
        .unwrap_err();
        assert_eq!(err, ScheduleError::LatencyUnachievable { max_stages: 1 });
        let err = schedule_with_options(
            &g,
            &d,
            &ScheduleOptions { clock_period_ps: 1000.0, max_stages: Some(0) },
        )
        .unwrap_err();
        assert_eq!(err, ScheduleError::LatencyUnachievable { max_stages: 0 });
    }

    #[test]
    fn incremental_scheduler_matches_from_scratch_across_relaxations() {
        // Chain of four 400ps ops at 1000ps, relaxed step by step; the
        // persistent engine must match a fresh solve bit-for-bit each time.
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let mut nodes = vec![a];
        let mut prev = a;
        for _ in 0..4 {
            prev = g.unary(OpKind::Not, prev).unwrap();
            nodes.push(prev);
        }
        g.set_output(prev);
        let mut d = DelayMatrix::initialize(&g, &[0.0, 400.0, 400.0, 400.0, 400.0]);
        let options = ScheduleOptions { clock_period_ps: 1000.0, max_stages: None };
        let mut engine = IncrementalScheduler::new(&g, &d, &options).unwrap();
        let first = engine.reschedule(&g, &d, &crate::delay::DirtySet::new(g.len())).unwrap();
        assert!(!engine.last_solve_was_warm(), "first solve is cold");
        assert_eq!(first, schedule_with_matrix(&g, &d, 1000.0).unwrap());
        let mut carry = crate::delay::DirtySet::new(g.len());
        for feedback in [900.0, 700.0, 500.0] {
            let mut from_scratch = d.clone();
            let mut dirty = d.apply_subgraph_feedback(&nodes[1..4], feedback);
            from_scratch.apply_subgraph_feedback(&nodes[1..4], feedback);
            from_scratch.reformulate(&g);
            dirty.union(&carry);
            carry = d.reformulate_incremental(&g, &dirty);
            dirty.union(&carry);
            assert_eq!(d, from_scratch, "matrix maintenance diverged at {feedback}");
            let warm = engine.reschedule(&g, &d, &dirty).unwrap();
            assert!(engine.last_solve_was_warm(), "relaxation at {feedback} must stay warm");
            let cold = schedule_with_matrix(&g, &d, 1000.0).unwrap();
            assert_eq!(warm, cold, "schedules diverged at feedback {feedback}");
        }
    }

    #[test]
    fn incremental_scheduler_rebuilds_on_non_monotone_delays() {
        // Build the engine against a fast matrix, then hand it a *slower*
        // one: a pair that never had a timing constraint now needs one, so
        // the engine must rebuild cold — and still match from-scratch.
        let (g, _) = mac_graph();
        let fast = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 400.0, 300.0]);
        let slow = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 400.0, 700.0]);
        let options = ScheduleOptions { clock_period_ps: 1000.0, max_stages: None };
        let mut engine = IncrementalScheduler::new(&g, &fast, &options).unwrap();
        let empty = crate::delay::DirtySet::new(g.len());
        engine.reschedule(&g, &fast, &empty).unwrap();
        // Mark everything dirty and swap in the slower matrix.
        let mut all = crate::delay::DirtySet::new(g.len());
        for u in 0..g.len() {
            for v in 0..g.len() {
                all.mark(u, v);
            }
        }
        let rebuilt = engine.reschedule(&g, &slow, &all).unwrap();
        assert!(!engine.last_solve_was_warm(), "non-monotone delta must fall back cold");
        assert_eq!(rebuilt, schedule_with_matrix(&g, &slow, 1000.0).unwrap());
        assert_eq!(rebuilt.num_stages(), 2);
    }

    #[test]
    fn potentials_warm_start_a_fresh_engine_at_a_looser_clock() {
        // Cross-run reuse: solve a chain at a tight clock, export the
        // potentials, seed a fresh engine at a looser clock (every timing
        // bound relaxes, so the old optimum stays feasible). The seeded
        // initial solve must be warm and bit-identical to a cold solve.
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let mut prev = a;
        for _ in 0..4 {
            prev = g.unary(OpKind::Not, prev).unwrap();
        }
        g.set_output(prev);
        let d = DelayMatrix::initialize(&g, &[0.0, 400.0, 400.0, 400.0, 400.0]);
        let tight = ScheduleOptions { clock_period_ps: 1000.0, max_stages: None };
        let mut first = IncrementalScheduler::new(&g, &d, &tight).unwrap();
        first.reschedule(&g, &d, &crate::delay::DirtySet::new(g.len())).unwrap();
        let pi = first.potentials().expect("potentials available after a solve");

        let loose = ScheduleOptions { clock_period_ps: 1700.0, max_stages: None };
        let mut second = IncrementalScheduler::new(&g, &d, &loose).unwrap();
        assert!(second.warm_from_potentials(&pi), "tight optimum must validate when relaxed");
        let warm = second.reschedule(&g, &d, &crate::delay::DirtySet::new(g.len())).unwrap();
        assert!(second.last_solve_was_warm(), "imported potentials must warm the first solve");
        assert_eq!(warm, schedule_with_matrix(&g, &d, 1700.0).unwrap());
    }

    #[test]
    fn retargeting_periods_matches_fresh_engines_both_directions() {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let mut prev = a;
        for _ in 0..5 {
            prev = g.unary(OpKind::Not, prev).unwrap();
        }
        g.set_output(prev);
        let d = DelayMatrix::initialize(&g, &[0.0, 400.0, 400.0, 400.0, 400.0, 400.0]);
        let options = ScheduleOptions { clock_period_ps: 900.0, max_stages: None };
        let mut engine = IncrementalScheduler::new(&g, &d, &options).unwrap();
        let empty = crate::delay::DirtySet::new(g.len());
        engine.reschedule(&g, &d, &empty).unwrap();
        // Ascending: every bound relaxes, the re-solve stays warm.
        for clock in [1000.0, 1300.0, 2100.0] {
            engine.retarget(&g, &d, clock);
            let got = engine.reschedule(&g, &d, &empty).unwrap();
            assert!(engine.last_solve_was_warm(), "ascending retarget to {clock} must be warm");
            assert_eq!(got, schedule_with_matrix(&g, &d, clock).unwrap(), "at {clock}");
        }
        // Same period again: a zero-delta re-solve, still warm, identical.
        engine.retarget(&g, &d, 2100.0);
        let again = engine.reschedule(&g, &d, &empty).unwrap();
        assert!(engine.last_solve_was_warm());
        assert_eq!(again, schedule_with_matrix(&g, &d, 2100.0).unwrap());
        // Descending below the build period: adjacent pairs (800ps) now
        // need constraints that were never emitted at 900ps, so the engine
        // goes stale and rebuilds — and still matches from-scratch.
        engine.retarget(&g, &d, 700.0);
        let tight = engine.reschedule(&g, &d, &empty).unwrap();
        assert!(!engine.last_solve_was_warm(), "a stale rebuild cannot count as warm");
        assert_eq!(tight, schedule_with_matrix(&g, &d, 700.0).unwrap());
        assert_eq!(tight.num_stages(), 5, "one op per stage at 700ps");
        // Below the feasibility floor the retargeted engine reports the
        // same error a fresh schedule would.
        engine.retarget(&g, &d, 300.0);
        assert!(matches!(
            engine.reschedule(&g, &d, &empty).unwrap_err(),
            ScheduleError::OperationExceedsClock { .. }
        ));
    }

    #[test]
    fn bulk_retarget_batches_the_drain() {
        // Widen the clock on a design with many flow-carrying timing
        // constraints: the retarget relaxes them all at once, so the warm
        // re-solve's excess arrives in bulk and the batched drain must
        // deliver its augmenting paths in fewer Dijkstra passes than paths
        // (the serial reference pays exactly one per path).
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        for _ in 0..10 {
            let mut prev = a;
            for _ in 0..7 {
                prev = g.unary(OpKind::Not, prev).unwrap();
            }
            g.set_output(prev);
        }
        let delays: Vec<f64> =
            std::iter::once(0.0).chain(std::iter::repeat(400.0)).take(g.len()).collect();
        let d = DelayMatrix::initialize(&g, &delays);
        let options = ScheduleOptions { clock_period_ps: 500.0, max_stages: None };
        let empty = crate::delay::DirtySet::new(g.len());
        let mut engine = IncrementalScheduler::new(&g, &d, &options).unwrap();
        engine.reschedule(&g, &d, &empty).unwrap();

        engine.retarget(&g, &d, 2500.0);
        let got = engine.reschedule(&g, &d, &empty).unwrap();
        assert!(engine.last_solve_was_warm(), "an ascending retarget re-solves warm");
        assert_eq!(got, schedule_with_matrix(&g, &d, 2500.0).unwrap());
        let stats = engine.last_drain_stats();
        assert!(stats.paths > 1, "the bulk retarget must re-route flow: {stats:?}");
        assert!(stats.dijkstras <= stats.paths, "{stats:?}");
        assert!(stats.dijkstras < stats.paths, "bulk retargets must batch: {stats:?}");
    }

    #[test]
    fn schedules_are_deterministic() {
        let (g, _) = mac_graph();
        let d = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 700.0, 500.0]);
        let s1 = schedule_with_matrix(&g, &d, 1000.0).unwrap();
        let s2 = schedule_with_matrix(&g, &d, 1000.0).unwrap();
        assert_eq!(s1, s2);
    }
}
