//! The SDC scheduling LP: constraints, objective and solving.
//!
//! Given a delay matrix (naive for the baseline, feedback-updated for ISDC
//! iterations), this module builds the LP of paper §II and solves it exactly:
//!
//! - **dependencies** — an operand is scheduled no later than its user;
//! - **timing (Eq. 2)** — a pair whose critical-path delay exceeds the clock
//!   period is split across `ceil(D/Tclk)` cycles;
//! - **parameters** pinned to the first stage (inputs arrive with the
//!   transaction);
//! - **objective** — total register bits: `sum_v width(v) * (last_use_v -
//!   s_v)`, the metric Table I reports, linearized with one auxiliary
//!   last-use variable per value and a sink variable for graph outputs.
//!
//! # LP sparsification
//!
//! Eq. 2 names a constraint for every delay-matrix pair — `O(n^2)` of them —
//! but most are implied by others. Emission runs a per-source topological
//! sweep ([`sweep_source`]) that tracks, for each node `w`, the tightest
//! bound on `x_u - x_w` already provable from dependency 0-edges plus the
//! timing constraints emitted so far for source `u`. A pair's own bound is
//! emitted only when it is *strictly tighter* than that chain:
//!
//! - **dominance pruning** — if the chain through an intermediate already
//!   proves a tighter bound, the pair's constraint is dropped;
//! - **bucket representatives** — pairs sharing a source collapse into
//!   `ceil(d/Tclk)` buckets along each chain: the first pair reaching a
//!   bucket emits the representative constraint, later members of the same
//!   bucket are deduplicated against it.
//!
//! Dropped pairs stay droppable only while their dominators hold, so the
//! incremental engine re-runs the same sweep over dirty rows (or every row
//! on a [`IncrementalScheduler::retarget`]) and *promotes* a former bucket
//! member to its own constraint the moment the chain no longer covers it —
//! see [`isdc_sdc::IncrementalSolver::add_constraint`]. The sparse and dense
//! systems describe the same polyhedron, and `canonical_assignment` is a
//! geometric property of that polyhedron, so schedules are bit-identical
//! ([`schedule_with_matrix_dense`] retains the dense emission as the test
//! reference).

use crate::delay::{DelayMatrix, DirtySet};
use crate::schedule::Schedule;
use isdc_ir::{Graph, NodeId};
use isdc_sdc::{DifferenceSystem, IncrementalSolver, SolveError, VarId};
use isdc_techlib::Picos;
use std::collections::BTreeMap;
use std::fmt;

/// Errors from schedule construction.
#[derive(Clone, Debug, PartialEq)]
pub enum ScheduleError {
    /// The underlying LP failed (infeasible systems indicate a delay matrix
    /// inconsistency; unbounded indicates a malformed objective).
    Solver(SolveError),
    /// The graph has no nodes to schedule.
    EmptyGraph,
    /// An operation's own delay exceeds the clock period — no schedule can
    /// meet timing (the paper doubles the target period in this case).
    OperationExceedsClock {
        /// The offending node.
        node: NodeId,
        /// The node's characterized delay.
        delay_ps: Picos,
        /// The clock period it does not fit in.
        clock_period_ps: Picos,
    },
    /// The requested latency bound is tighter than timing allows.
    LatencyUnachievable {
        /// The requested maximum pipeline stages.
        max_stages: u32,
    },
    /// A deterministic fault-injection hook fired (chaos testing only —
    /// see `isdc_faults`). Treated as a *transient* failure by the batch
    /// engine's retry policy, unlike the real solver errors above.
    Injected {
        /// The injection site that fired (e.g. `solver/drain`).
        site: &'static str,
    },
    /// An installed `isdc_cancel` deadline or token tripped mid-run. The
    /// run unwound through its normal error paths: warm solver state is
    /// discarded (never poisoned), session/cache stay consistent, and any
    /// already-completed sweep points are kept. *Terminal* — the batch
    /// engine never retries it.
    DeadlineExceeded,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Solver(e) => write!(f, "lp solver: {e}"),
            ScheduleError::EmptyGraph => f.write_str("cannot schedule an empty graph"),
            ScheduleError::OperationExceedsClock { node, delay_ps, clock_period_ps } => write!(
                f,
                "operation {node} delay {delay_ps}ps exceeds clock period {clock_period_ps}ps"
            ),
            ScheduleError::LatencyUnachievable { max_stages } => {
                write!(f, "no schedule meets timing within {max_stages} pipeline stages")
            }
            ScheduleError::Injected { site } => {
                write!(f, "injected fault at {site}")
            }
            ScheduleError::DeadlineExceeded => {
                f.write_str("deadline exceeded (run cancelled cleanly)")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<SolveError> for ScheduleError {
    fn from(e: SolveError) -> Self {
        match e {
            SolveError::Cancelled => ScheduleError::DeadlineExceeded,
            e => ScheduleError::Solver(e),
        }
    }
}

/// Builds and solves the SDC LP against the given delay matrix.
///
/// This one function serves both the baseline (naive matrix) and every ISDC
/// iteration (feedback-updated matrix) — exactly the reformulation loop of
/// paper §III-D.
///
/// # Errors
///
/// See [`ScheduleError`].
///
/// # Examples
///
/// ```
/// use isdc_core::{schedule_with_matrix, DelayMatrix};
/// use isdc_ir::{Graph, OpKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = Graph::new("t");
/// let a = g.param("a", 8);
/// let b = g.param("b", 8);
/// let x = g.binary(OpKind::Add, a, b)?;
/// let y = g.binary(OpKind::Mul, x, x)?;
/// g.set_output(y);
/// // add takes 600ps, mul 900ps, clock 1000ps: they cannot chain.
/// let delays = DelayMatrix::initialize(&g, &[0.0, 0.0, 600.0, 900.0]);
/// let schedule = schedule_with_matrix(&g, &delays, 1000.0)?;
/// assert_eq!(schedule.num_stages(), 2);
/// # Ok(())
/// # }
/// ```
pub fn schedule_with_matrix(
    graph: &Graph,
    delays: &DelayMatrix,
    clock_period_ps: Picos,
) -> Result<Schedule, ScheduleError> {
    schedule_with_options(graph, delays, &ScheduleOptions { clock_period_ps, max_stages: None })
}

/// Scheduling knobs beyond the clock period.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScheduleOptions {
    /// Target clock period in picoseconds.
    pub clock_period_ps: Picos,
    /// Optional upper bound on pipeline depth (like XLS's `pipeline_stages`
    /// option). `None` leaves depth to the register objective.
    pub max_stages: Option<u32>,
}

/// [`schedule_with_matrix`] with explicit [`ScheduleOptions`].
///
/// # Errors
///
/// In addition to [`schedule_with_matrix`]'s errors, returns
/// [`ScheduleError::LatencyUnachievable`] when `max_stages` contradicts the
/// timing constraints.
pub fn schedule_with_options(
    graph: &Graph,
    delays: &DelayMatrix,
    options: &ScheduleOptions,
) -> Result<Schedule, ScheduleError> {
    let built = build_lp(graph, delays, options, true)?;
    // Move the system into the solver instead of going through `minimize`,
    // which would clone the system it is handed by ref.
    let solution = IncrementalSolver::new(built.sys, built.weights)
        .and_then(|mut solver| solver.solve())
        .map_err(|e| map_solve_error(e, options.max_stages))?;
    Ok(solution_to_schedule(graph, &solution.assignment))
}

/// [`schedule_with_matrix`] through the *dense* Eq. 2 emission — one
/// constraint per delay-matrix pair, no dominance pruning or bucket
/// deduplication. The identity-test reference: sparse and dense systems
/// bound the same polyhedron, so schedules must match bit for bit.
#[doc(hidden)]
pub fn schedule_with_matrix_dense(
    graph: &Graph,
    delays: &DelayMatrix,
    clock_period_ps: Picos,
) -> Result<Schedule, ScheduleError> {
    let options = ScheduleOptions { clock_period_ps, max_stages: None };
    let built = build_lp(graph, delays, &options, false)?;
    let solution = IncrementalSolver::new(built.sys, built.weights)
        .and_then(|mut solver| solver.solve())
        .map_err(|e| map_solve_error(e, None))?;
    Ok(solution_to_schedule(graph, &solution.assignment))
}

/// Counters of the sparsified Eq. 2 emission (see the module docs). On an
/// [`IncrementalScheduler`] these accumulate across the initial build and
/// every reconciliation sweep, so they export directly as monotone
/// telemetry counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SparsifyStats {
    /// Delay-matrix pairs whose Eq. 2 bound was derived.
    pub pairs_scanned: u64,
    /// Pairs that emitted (or kept, on reconciliation) their own constraint.
    pub constraints_emitted: u64,
    /// Pairs dropped because a chain through an intermediate already proves
    /// a *strictly tighter* bound.
    pub dominance_pruned: u64,
    /// Pairs dropped because an earlier pair of the same source already
    /// carries the same `ceil(d/Tclk)` bucket's bound along the chain.
    pub bucket_deduped: u64,
}

impl SparsifyStats {
    /// Constraints the dense emission would have added but the sweep
    /// dropped.
    pub fn pruned(&self) -> u64 {
        self.dominance_pruned + self.bucket_deduped
    }

    /// Constraints the dense Eq. 2 emission would have added.
    pub fn dense_constraints(&self) -> u64 {
        self.constraints_emitted + self.pruned()
    }

    /// Fraction of dense constraints dropped; `>= 0.5` means the LP shrank
    /// by at least 2x.
    pub fn pruning_ratio(&self) -> f64 {
        let dense = self.dense_constraints();
        if dense == 0 {
            0.0
        } else {
            self.pruned() as f64 / dense as f64
        }
    }

    /// The events since an `earlier` snapshot of the same cumulative
    /// counters — what one reconciliation (or one run's share of a
    /// session-carried engine) contributed.
    #[must_use]
    pub fn delta_since(&self, earlier: &SparsifyStats) -> SparsifyStats {
        SparsifyStats {
            pairs_scanned: self.pairs_scanned.saturating_sub(earlier.pairs_scanned),
            constraints_emitted: self
                .constraints_emitted
                .saturating_sub(earlier.constraints_emitted),
            dominance_pruned: self.dominance_pruned.saturating_sub(earlier.dominance_pruned),
            bucket_deduped: self.bucket_deduped.saturating_sub(earlier.bucket_deduped),
        }
    }
}

/// A timing constraint the LP actually carries for one (source, sink) pair.
#[derive(Clone, Copy, Debug)]
struct TimingArc {
    /// Constraint id in the solver's difference system.
    id: usize,
    /// The bound currently written into the solver for this constraint.
    bound: i64,
    /// Whether the pair is currently a non-representative (its bound is
    /// implied by the chain, and the solver's canonicalization edge for it
    /// is pruned). Mirrors the solver-side flag; kept here because
    /// [`isdc_sdc::IncrementalSolver::update_bound`] clears the solver's
    /// flag on any bound change.
    implied: bool,
}

/// The SDC LP plus the bookkeeping the incremental engine needs: which
/// constraint (if any) encodes the timing bound of each node pair.
struct BuiltLp {
    sys: DifferenceSystem,
    weights: Vec<i64>,
    /// Per source `u`: sink index -> the emitted timing constraint. Sparse —
    /// only pairs that ever emitted a constraint have entries, keyed by node
    /// index in a `BTreeMap` so iteration (and thus constraint ids) stays
    /// deterministic.
    timing: Vec<BTreeMap<u32, TimingArc>>,
    stats: SparsifyStats,
    chain: ChainScratch,
}

/// Eq. 2's bound for a pair with critical-path delay `d`: split across
/// `ceil(d / Tclk)` stages. Nonpositive whenever `d > Tclk`; pairs at or
/// under the clock need no constraint (encoded as bound 0, which dependency
/// transitivity already implies for connected pairs).
///
/// The stage count is the smallest `k` with `k * Tclk >= d`, found by
/// floating the quotient and then walking to the exact boundary with
/// correctly-rounded multiplications — a pair at exactly `k * Tclk` needs
/// exactly `k` stages at every magnitude, where the historical
/// `(d / Tclk - 1e-9).ceil()` drifted once one ulp of the quotient exceeded
/// the fixed epsilon.
fn timing_bound(d: Picos, clock_period_ps: Picos) -> i64 {
    if d <= clock_period_ps {
        return 0;
    }
    let mut stages = (d / clock_period_ps).floor() as i64;
    if stages < 1 {
        stages = 1;
    }
    while (stages as f64) * clock_period_ps < d {
        stages += 1;
    }
    while stages > 1 && ((stages - 1) as f64) * clock_period_ps >= d {
        stages -= 1;
    }
    -(stages - 1)
}

/// "No bound provable" sentinel in the dominance chain; large enough that
/// any real bound wins a `min`, small enough that arithmetic cannot wrap.
const UNREACHED: i64 = i64::MAX / 2;

/// Per-sweep scratch for [`sweep_source`]: `bound[w]` is the tightest bound
/// on `x_u - x_w` provable so far, valid only when `stamp[w]` carries the
/// current sweep's version (version stamps make resets O(1) instead of
/// O(n) per source).
#[derive(Clone, Debug)]
struct ChainScratch {
    bound: Vec<i64>,
    stamp: Vec<u64>,
    version: u64,
}

impl ChainScratch {
    fn new(n: usize) -> Self {
        Self { bound: vec![0; n], stamp: vec![0; n], version: 0 }
    }
}

/// The sparsifying emission sweep for one source `u` (see the module docs).
///
/// Walks sinks in node-id order — which is topological, operands always
/// having smaller ids than their users — maintaining `chain[w]`, the
/// tightest bound on `x_u - x_w` provable from dependency 0-edges plus the
/// timing constraints *this sweep decided to emit*. For every pair with a
/// delay entry, `on_pair(w, bound, emitted)` reports the pair's Eq. 2 bound
/// and whether it needs its own constraint (`emitted` is true exactly when
/// the bound is negative and strictly tighter than the chain). The diagonal
/// is skipped: a node's fit in the period is the caller's feasibility
/// check, not a difference constraint.
///
/// Soundness: every finite `chain[w]` is witnessed by a path of emitted
/// source-`u` constraints and dependency edges, all of whose intermediates
/// lie strictly between `u` and `w` in id order — so dropping a pair never
/// weakens the system, and the chain never claims a bound tighter than the
/// true path bound (delay entries exist exactly for operand-reachable
/// pairs, and path delays dominate their prefixes).
fn sweep_source(
    graph: &Graph,
    delays: &DelayMatrix,
    clock_period_ps: Picos,
    u: NodeId,
    chain: &mut ChainScratch,
    stats: &mut SparsifyStats,
    mut on_pair: impl FnMut(NodeId, i64, bool),
) {
    chain.version += 1;
    let version = chain.version;
    chain.stamp[u.index()] = version;
    chain.bound[u.index()] = 0;
    for w in graph.node_ids().skip(u.index() + 1) {
        let mut incoming = UNREACHED;
        for &p in &graph.node(w).operands {
            if chain.stamp[p.index()] == version {
                incoming = incoming.min(chain.bound[p.index()]);
            }
        }
        let own = delays.get(u, w).map(|d| {
            stats.pairs_scanned += 1;
            timing_bound(d, clock_period_ps)
        });
        let mut best = incoming;
        if let Some(own) = own {
            let emitted = own < 0 && own < incoming;
            if emitted {
                stats.constraints_emitted += 1;
                best = own;
            } else if own < 0 {
                if own == incoming {
                    stats.bucket_deduped += 1;
                } else {
                    stats.dominance_pruned += 1;
                }
            }
            on_pair(w, own, emitted);
        }
        if best != UNREACHED {
            chain.stamp[w.index()] = version;
            chain.bound[w.index()] = best;
        }
    }
}

/// Builds the full SDC LP of paper §II for the given delay matrix.
/// `sparsify` selects the Eq. 2 emission: the dominance/bucket sweep, or
/// the dense one-constraint-per-pair reference.
fn build_lp(
    graph: &Graph,
    delays: &DelayMatrix,
    options: &ScheduleOptions,
    sparsify: bool,
) -> Result<BuiltLp, ScheduleError> {
    let clock_period_ps = options.clock_period_ps;
    let n = graph.len();
    if n == 0 {
        return Err(ScheduleError::EmptyGraph);
    }
    for v in graph.node_ids() {
        let d = delays.node_delay(v);
        if d > clock_period_ps {
            return Err(ScheduleError::OperationExceedsClock {
                node: v,
                delay_ps: d,
                clock_period_ps,
            });
        }
    }

    // Variable layout: [0, n) node cycles; [n, 2n) last-use; 2n sink.
    let x = |v: NodeId| VarId(v.0);
    let m = |v: NodeId| VarId((n + v.index()) as u32);
    let sink = VarId(2 * n as u32);
    let mut sys = DifferenceSystem::new(2 * n + 1);
    let mut weights = vec![0i64; 2 * n + 1];
    let mut timing: Vec<BTreeMap<u32, TimingArc>> = vec![BTreeMap::new(); n];
    let mut stats = SparsifyStats::default();
    let mut chain = ChainScratch::new(n);

    // Dependencies: x_p <= x_v.
    for (v, node) in graph.iter() {
        for &p in &node.operands {
            sys.add_constraint(x(p), x(v), 0);
        }
    }

    // Timing (Eq. 2): pairs whose critical-path delay exceeds Tclk.
    if sparsify {
        for u in graph.node_ids() {
            let map = &mut timing[u.index()];
            sweep_source(graph, delays, clock_period_ps, u, &mut chain, &mut stats, |w, b, e| {
                if e {
                    let id = sys.add_constraint(x(u), x(w), b);
                    map.insert(w.0, TimingArc { id, bound: b, implied: false });
                }
            });
        }
    } else {
        for u in graph.node_ids() {
            for v in graph.node_ids() {
                let Some(d) = delays.get(u, v) else { continue };
                stats.pairs_scanned += 1;
                let bound = timing_bound(d, clock_period_ps);
                if bound < 0 {
                    stats.constraints_emitted += 1;
                    let id = sys.add_constraint(x(u), x(v), bound);
                    timing[u.index()].insert(v.0, TimingArc { id, bound, implied: false });
                }
            }
        }
    }

    // Parameters arrive together in the first stage and precede everything.
    if let Some(&p0) = graph.params().first() {
        for &p in &graph.params()[1..] {
            sys.add_constraint(x(p), x(p0), 0);
            sys.add_constraint(x(p0), x(p), 0);
        }
        for v in graph.node_ids() {
            if v != p0 {
                sys.add_constraint(x(p0), x(v), 0);
            }
        }
    }

    // Sink: after every node; the pseudo-last-use of graph outputs.
    for v in graph.node_ids() {
        sys.add_constraint(x(v), sink, 0);
    }

    // Optional latency bound: the whole pipeline fits in max_stages cycles.
    if let Some(max_stages) = options.max_stages {
        if max_stages == 0 {
            return Err(ScheduleError::LatencyUnachievable { max_stages });
        }
        if let Some(&p0) = graph.params().first() {
            // sink - p0 <= max_stages - 1.
            sys.add_constraint(sink, x(p0), i64::from(max_stages) - 1);
        }
    }

    // Register-lifetime objective.
    for (v, node) in graph.iter() {
        let users = graph.users(v);
        let is_output = graph.outputs().contains(&v);
        if users.is_empty() && !is_output {
            continue; // dead value: no register cost
        }
        for &u in users {
            sys.add_constraint(x(u), m(v), 0); // m_v >= x_u
        }
        if is_output {
            sys.add_constraint(sink, m(v), 0); // m_v >= sink
        } else {
            // Guarantee m_v >= x_v even if all users chain in-stage.
            sys.add_constraint(x(v), m(v), 0);
        }
        let w = node.width as i64;
        weights[m(v).index()] += w;
        weights[x(v).index()] -= w;
    }

    Ok(BuiltLp { sys, weights, timing, stats, chain })
}

/// Re-runs the emission sweep for source `u` against the live solver,
/// reconciling what the sweep wants with what the system carries:
///
/// - bound changes go through `update_bound` (relaxations stay warm,
///   tightenings cold-fall on their own);
/// - a pair that needs a constraint it never had is **promoted** via
///   `add_constraint` (warm-safe under monotone feedback: the old optimum
///   satisfied the chain bound that used to dominate the pair, which is at
///   least as tight as the promoted bound);
/// - a pair whose constraint the sweep no longer emits is **demoted**: the
///   constraint stays in the system at its (implied) Eq. 2 bound, so the
///   polyhedron is unchanged, but its canonicalization edge is pruned.
///
/// Demotions and restorations are batched into `implied` / `restored`; the
/// caller applies them once after all sweeps.
#[allow(clippy::too_many_arguments)]
fn reconcile_source(
    graph: &Graph,
    delays: &DelayMatrix,
    clock_period_ps: Picos,
    u: NodeId,
    solver: &mut IncrementalSolver,
    map: &mut BTreeMap<u32, TimingArc>,
    chain: &mut ChainScratch,
    stats: &mut SparsifyStats,
    implied: &mut Vec<usize>,
    restored: &mut Vec<usize>,
) {
    sweep_source(graph, delays, clock_period_ps, u, chain, stats, |w, bound, emitted| {
        match map.get_mut(&w.0) {
            Some(arc) => {
                let bound_changed = bound != arc.bound;
                if bound_changed {
                    solver.update_bound(arc.id, bound);
                    arc.bound = bound;
                }
                // `update_bound` clears the solver-side implied flag on any
                // change, so the solver agrees with `arc.implied` only when
                // the bound did not move.
                let solver_implied_now = arc.implied && !bound_changed;
                if emitted {
                    if solver_implied_now {
                        restored.push(arc.id);
                    }
                    arc.implied = false;
                } else {
                    if !solver_implied_now {
                        implied.push(arc.id);
                    }
                    arc.implied = true;
                }
            }
            None if emitted => {
                let id = solver.add_constraint(VarId(u.0), VarId(w.0), bound);
                map.insert(w.0, TimingArc { id, bound, implied: false });
            }
            None => {}
        }
    });
}

fn map_solve_error(e: SolveError, max_stages: Option<u32>) -> ScheduleError {
    match (&e, max_stages) {
        (SolveError::Cancelled, _) => ScheduleError::DeadlineExceeded,
        (SolveError::Infeasible { .. }, Some(max_stages)) => {
            ScheduleError::LatencyUnachievable { max_stages }
        }
        _ => ScheduleError::Solver(e),
    }
}

/// Normalizes an LP assignment into a schedule: params (or the global
/// minimum) define stage 0.
fn solution_to_schedule(graph: &Graph, assignment: &[i64]) -> Schedule {
    let n = graph.len();
    let base = graph
        .params()
        .first()
        .map(|&p| assignment[p.index()])
        .unwrap_or_else(|| (0..n).map(|i| assignment[i]).min().unwrap_or(0));
    let cycles: Vec<u32> = (0..n)
        .map(|i| {
            let c = assignment[i] - base;
            debug_assert!(c >= 0, "node scheduled before the first stage");
            c as u32
        })
        .collect();
    Schedule::new(cycles)
}

/// A scheduler that persists the SDC LP across ISDC iterations.
///
/// [`schedule_with_options`] rebuilds the difference system and cold-solves
/// it on every call. This engine builds the (sparsified) system once, then
/// per iteration re-runs the emission sweep over only the delay matrix's
/// dirty rows and re-solves through a warm-started [`IncrementalSolver`].
///
/// Because Alg. 1 keeps delay updates monotonically non-increasing, the
/// re-emitted bounds are relaxations and promoted constraints are already
/// satisfied by the old optimum, so the warm path applies end to end; any
/// non-monotone input (a tightened bound, a promotion the old optimum
/// violates) makes the solver fall back to its cold path on its own — there
/// is no full-rebuild mode. Either way the result is bit-identical to
/// [`schedule_with_options`] on the same matrix.
#[derive(Clone, Debug)]
pub struct IncrementalScheduler {
    options: ScheduleOptions,
    solver: IncrementalSolver,
    /// Per source: sink index -> live timing constraint (see
    /// [`BuiltLp::timing`]).
    timing: Vec<BTreeMap<u32, TimingArc>>,
    chain: ChainScratch,
    stats: SparsifyStats,
}

impl IncrementalScheduler {
    /// Builds the LP for `graph` against `delays` and primes the solver.
    ///
    /// # Errors
    ///
    /// See [`schedule_with_options`].
    pub fn new(
        graph: &Graph,
        delays: &DelayMatrix,
        options: &ScheduleOptions,
    ) -> Result<Self, ScheduleError> {
        let built = build_lp(graph, delays, options, true)?;
        let solver = IncrementalSolver::new(built.sys, built.weights)
            .map_err(|e| map_solve_error(e, options.max_stages))?;
        Ok(Self {
            options: *options,
            solver,
            timing: built.timing,
            chain: built.chain,
            stats: built.stats,
        })
    }

    /// Re-solves after delay-matrix changes covered by `dirty`, reusing the
    /// persistent system and solver state. `delays` must be the same matrix
    /// the engine was built against, mutated only through entries recorded
    /// in `dirty` since the previous call.
    ///
    /// # Errors
    ///
    /// See [`schedule_with_options`]. Monotone (relaxing-only) updates can
    /// never make the system infeasible.
    pub fn reschedule(
        &mut self,
        graph: &Graph,
        delays: &DelayMatrix,
        dirty: &DirtySet,
    ) -> Result<Schedule, ScheduleError> {
        for v in graph.node_ids() {
            let d = delays.node_delay(v);
            if d > self.options.clock_period_ps {
                return Err(ScheduleError::OperationExceedsClock {
                    node: v,
                    delay_ps: d,
                    clock_period_ps: self.options.clock_period_ps,
                });
            }
        }
        // A sweep's decisions depend only on its source's delay row, so
        // dirty *rows* are exactly the sweeps whose inputs changed; within
        // a row the sweep re-derives every pair from the matrix, making
        // repeated marks and row/col shapes equally cheap to honor.
        let Self { options, solver, timing, chain, stats } = self;
        let mut implied: Vec<usize> = Vec::new();
        let mut restored: Vec<usize> = Vec::new();
        for u in dirty.rows() {
            reconcile_source(
                graph,
                delays,
                options.clock_period_ps,
                u,
                solver,
                &mut timing[u.index()],
                chain,
                stats,
                &mut implied,
                &mut restored,
            );
        }
        solver.mark_implied(&implied);
        solver.clear_implied(&restored);
        let solution = solver.solve().map_err(|e| map_solve_error(e, options.max_stages))?;
        Ok(solution_to_schedule(graph, &solution.assignment))
    }

    /// Whether the most recent [`IncrementalScheduler::reschedule`] re-used
    /// warm solver state end to end (false after any cold fallback).
    pub fn last_solve_was_warm(&self) -> bool {
        self.solver.last_solve_was_warm()
    }

    /// Drain counters of the most recent solve (see
    /// [`isdc_sdc::DrainStats`]): how many Dijkstra passes the SSP drain
    /// ran and how many augmenting paths they delivered. On a bulk
    /// retarget the batched drain keeps `dijkstras` far below `paths`.
    pub fn last_drain_stats(&self) -> isdc_sdc::DrainStats {
        self.solver.last_drain_stats()
    }

    /// Cumulative [`SparsifyStats`] — the initial build plus every
    /// reconciliation sweep since. Monotone, so deltas export directly as
    /// telemetry counters; right after [`IncrementalScheduler::new`] it is
    /// exactly the build's composition (emitted + pruned = what the dense
    /// LP would carry).
    pub fn sparsify_stats(&self) -> SparsifyStats {
        self.stats
    }

    /// Routes solves through the retained serial reference drain
    /// (test/bench hook; see
    /// [`isdc_sdc::IncrementalSolver::use_reference_drain`]).
    #[doc(hidden)]
    pub fn use_reference_drain(&mut self, on: bool) {
        self.solver.use_reference_drain(on);
    }

    /// Exports the solver's node potentials after a solve — the cross-run
    /// warm-start currency: `-potentials` is the optimal LP assignment, and
    /// [`IncrementalScheduler::warm_from_potentials`] on a *fresh* engine
    /// (same design, this or a neighbouring clock period) re-seeds from it.
    pub fn potentials(&self) -> Option<Vec<i64>> {
        self.solver.potentials()
    }

    /// Re-targets the engine to a new clock period by re-running the
    /// emission sweep for every source at `clock_period_ps` — the strongest
    /// cross-run reuse an [`IsdcSession`](crate::IsdcSession) sweep has:
    /// the whole difference system, flow and potentials survive the period
    /// change.
    ///
    /// `delays` must be the matrix the engine's bounds currently encode
    /// (for a session, the naive matrix its initial solve ran against).
    /// Eq. 2's bound is monotone in the period, so moving to a *longer*
    /// period relaxes every bound and the next solve stays warm; a shorter
    /// period tightens bounds and promotes constraints the sweep used to
    /// prune (new bucket representatives), either of which makes the next
    /// solve fall back cold on its own. Either way the subsequent schedule
    /// is bit-identical to a fresh engine's; an infeasible period surfaces
    /// as [`IncrementalScheduler::reschedule`]'s usual feasibility error.
    pub fn retarget(&mut self, graph: &Graph, delays: &DelayMatrix, clock_period_ps: Picos) {
        self.options.clock_period_ps = clock_period_ps;
        let Self { solver, timing, chain, stats, .. } = self;
        let mut implied: Vec<usize> = Vec::new();
        let mut restored: Vec<usize> = Vec::new();
        for u in graph.node_ids() {
            reconcile_source(
                graph,
                delays,
                clock_period_ps,
                u,
                solver,
                &mut timing[u.index()],
                chain,
                stats,
                &mut implied,
                &mut restored,
            );
        }
        solver.mark_implied(&implied);
        solver.clear_implied(&restored);
    }

    /// Seeds the engine's first solve from previously-exported potentials
    /// (see [`isdc_sdc::IncrementalSolver::warm_from_potentials`]). Returns
    /// false and changes nothing when the import does not validate against
    /// the current LP — schedules are bit-identical either way, so callers
    /// treat this as a pure speed hint.
    pub fn warm_from_potentials(&mut self, pi: &[i64]) -> bool {
        self.solver.warm_from_potentials(pi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isdc_ir::OpKind;

    fn mac_graph() -> (Graph, [NodeId; 5]) {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let b = g.param("b", 8);
        let c = g.param("c", 8);
        let p = g.binary(OpKind::Mul, a, b).unwrap();
        let s = g.binary(OpKind::Add, p, c).unwrap();
        g.set_output(s);
        (g, [a, b, c, p, s])
    }

    fn not_chain(len: usize) -> Graph {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let mut prev = a;
        for _ in 0..len {
            prev = g.unary(OpKind::Not, prev).unwrap();
        }
        g.set_output(prev);
        g
    }

    #[test]
    fn everything_chains_when_timing_allows() {
        let (g, _) = mac_graph();
        let d = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 400.0, 300.0]);
        let schedule = schedule_with_matrix(&g, &d, 1000.0).unwrap();
        assert_eq!(schedule.num_stages(), 1);
        assert_eq!(schedule.register_bits(&g), 0);
    }

    #[test]
    fn timing_splits_stages() {
        let (g, [_, _, _, p, s]) = mac_graph();
        // 400 + 700 = 1100 > 1000: mul and add must separate.
        let d = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 400.0, 700.0]);
        let schedule = schedule_with_matrix(&g, &d, 1000.0).unwrap();
        assert_eq!(schedule.num_stages(), 2);
        assert!(schedule.cycle(p) < schedule.cycle(s));
        assert_eq!(schedule.first_dependency_violation(&g), None);
    }

    #[test]
    fn long_paths_split_multiple_times() {
        // Chain of four 400ps ops at 1000ps: pairs chain (800), triples do
        // not (1200) — two ops per stage, two stages.
        let g = not_chain(4);
        let d = DelayMatrix::initialize(&g, &[0.0, 400.0, 400.0, 400.0, 400.0]);
        let schedule = schedule_with_matrix(&g, &d, 1000.0).unwrap();
        assert_eq!(schedule.num_stages(), 2);
        // And with 600ps ops even pairs cannot chain: one op per stage.
        let d = DelayMatrix::initialize(&g, &[0.0, 600.0, 600.0, 600.0, 600.0]);
        let schedule = schedule_with_matrix(&g, &d, 1000.0).unwrap();
        assert_eq!(schedule.num_stages(), 4);
    }

    #[test]
    fn objective_minimizes_register_bits() {
        // A narrow input feeding a wide intermediate: producing the wide
        // value early would buffer 32 bits across the stage boundary, while
        // deferring it only buffers the 8-bit input. The LP must defer.
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let b = g.param("b", 32);
        let c = g.param("c", 32);
        let slow = g.binary(OpKind::Mul, b, c).unwrap(); // 900ps
        let e = g.unary(OpKind::ZeroExt { new_width: 32 }, a).unwrap(); // free
        let wide = g.binary(OpKind::Mul, e, e).unwrap(); // 100ps, 32 bits
        let out = g.binary(OpKind::Xor, slow, wide).unwrap(); // 200ps
        g.set_output(out);
        let d = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 900.0, 0.0, 100.0, 200.0]);
        let schedule = schedule_with_matrix(&g, &d, 1000.0).unwrap();
        // slow -> out is 1100ps: two stages. wide chains with out in the
        // second stage, so only `a` (8 bits) crosses besides slow's
        // unavoidable 32-bit register.
        assert_eq!(schedule.num_stages(), 2);
        assert_eq!(schedule.cycle(wide), schedule.cycle(out));
        assert_eq!(schedule.register_bits(&g), 32 + 8);
    }

    #[test]
    fn params_pinned_to_stage_zero() {
        let (g, [a, b, c, _, _]) = mac_graph();
        let d = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 900.0, 900.0]);
        let schedule = schedule_with_matrix(&g, &d, 1000.0).unwrap();
        assert_eq!(schedule.cycle(a), 0);
        assert_eq!(schedule.cycle(b), 0);
        assert_eq!(schedule.cycle(c), 0);
    }

    #[test]
    fn oversized_operation_rejected() {
        let (g, _) = mac_graph();
        let d = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 2700.0, 100.0]);
        let err = schedule_with_matrix(&g, &d, 2500.0).unwrap_err();
        assert!(matches!(err, ScheduleError::OperationExceedsClock { delay_ps, .. }
            if delay_ps == 2700.0));
    }

    #[test]
    fn empty_graph_rejected() {
        let g = Graph::new("empty");
        let d = DelayMatrix::initialize(&g, &[]);
        assert_eq!(schedule_with_matrix(&g, &d, 1000.0).unwrap_err(), ScheduleError::EmptyGraph);
    }

    #[test]
    fn feedback_updated_matrix_reduces_stages() {
        // The paper's Fig. 2 scenario: naive estimate forces a split, the
        // downstream-reported delay lets ops merge back into one cycle.
        let (g, [_, _, _, p, s]) = mac_graph();
        let mut d = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 700.0, 500.0]);
        let before = schedule_with_matrix(&g, &d, 1000.0).unwrap();
        assert_eq!(before.num_stages(), 2);
        // Downstream synthesis reports the {p, s} subgraph fits in 900ps.
        d.apply_subgraph_feedback(&[p, s], 900.0);
        d.reformulate(&g);
        let after = schedule_with_matrix(&g, &d, 1000.0).unwrap();
        assert_eq!(after.num_stages(), 1);
        assert!(after.register_bits(&g) < before.register_bits(&g));
    }

    #[test]
    fn loose_latency_bound_changes_nothing() {
        let (g, _) = mac_graph();
        let d = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 700.0, 500.0]);
        let unbounded = schedule_with_matrix(&g, &d, 1000.0).unwrap();
        let bounded = schedule_with_options(
            &g,
            &d,
            &ScheduleOptions { clock_period_ps: 1000.0, max_stages: Some(10) },
        )
        .unwrap();
        assert_eq!(unbounded, bounded);
    }

    #[test]
    fn exact_latency_bound_is_feasible() {
        let (g, _) = mac_graph();
        let d = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 700.0, 500.0]);
        let schedule = schedule_with_options(
            &g,
            &d,
            &ScheduleOptions { clock_period_ps: 1000.0, max_stages: Some(2) },
        )
        .unwrap();
        assert_eq!(schedule.num_stages(), 2);
    }

    #[test]
    fn unachievable_latency_reports_clearly() {
        let (g, _) = mac_graph();
        // 700 + 500 > 1000 forces two stages; demanding one must fail.
        let d = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 700.0, 500.0]);
        let err = schedule_with_options(
            &g,
            &d,
            &ScheduleOptions { clock_period_ps: 1000.0, max_stages: Some(1) },
        )
        .unwrap_err();
        assert_eq!(err, ScheduleError::LatencyUnachievable { max_stages: 1 });
        let err = schedule_with_options(
            &g,
            &d,
            &ScheduleOptions { clock_period_ps: 1000.0, max_stages: Some(0) },
        )
        .unwrap_err();
        assert_eq!(err, ScheduleError::LatencyUnachievable { max_stages: 0 });
    }

    #[test]
    fn timing_bound_is_exact_at_bucket_boundaries() {
        // Exactly k*Tclk fits in k stages; one ulp past needs k+1.
        assert_eq!(timing_bound(1000.0, 1000.0), 0);
        assert_eq!(timing_bound(1999.999, 1000.0), -1);
        assert_eq!(timing_bound(2000.0, 1000.0), -1);
        assert_eq!(timing_bound(2000.0000001, 1000.0), -2);
        assert_eq!(timing_bound(3000.0, 1000.0), -2);
        // Fractional periods: 3 * 333.3 is not representable, but the
        // comparison happens against the correctly-rounded product, so the
        // bucket count is still the smallest k with fl(k * T) >= d.
        let t = 333.3;
        assert_eq!(timing_bound(3.0 * t, t), -2);
        assert_eq!(timing_bound(3.0 * t + 0.001, t), -3);
        // Large magnitudes, where the historical fixed 1e-9 epsilon fell
        // below one ulp of the quotient and exact multiples drifted up a
        // bucket.
        let t = 1.0e12;
        assert_eq!(timing_bound(3.0 * t, t), -2);
        assert_eq!(timing_bound(3.0 * t + 1.0, t), -3);
        assert_eq!(timing_bound(1000.0 * t, t), -999);
    }

    #[test]
    fn timing_bound_is_monotone_near_boundaries() {
        // The incremental engine's warm path relies on monotonicity: a
        // smaller delay or longer period never tightens the bound.
        let mut prev = 0;
        for i in 0..4000 {
            let d = f64::from(i);
            let b = timing_bound(d, 100.0);
            assert!(b <= prev, "bound tightened as delay shrank: {d}");
            prev = b;
            if d > 100.0 {
                assert!(timing_bound(d, 100.5) >= b, "longer period tightened {d}");
            }
        }
    }

    #[test]
    fn chain_buckets_collapse_to_representatives() {
        // Five 400ps Nots at 900ps: along each source's chain the bound
        // steps -1, -1, -2 — the repeated -1 dedupes against its bucket
        // representative, so the sparse LP carries 6 of the dense 9.
        let g = not_chain(5);
        let d = DelayMatrix::initialize(&g, &[0.0, 400.0, 400.0, 400.0, 400.0, 400.0]);
        let options = ScheduleOptions { clock_period_ps: 900.0, max_stages: None };
        let engine = IncrementalScheduler::new(&g, &d, &options).unwrap();
        let stats = engine.sparsify_stats();
        assert_eq!(stats.constraints_emitted, 6);
        assert_eq!(stats.bucket_deduped, 3);
        assert_eq!(stats.dominance_pruned, 0);
        assert_eq!(stats.dense_constraints(), 9);
        assert_eq!(
            schedule_with_matrix(&g, &d, 900.0).unwrap(),
            schedule_with_matrix_dense(&g, &d, 900.0).unwrap()
        );
    }

    #[test]
    fn sparse_matches_dense_across_clocks_and_feedback() {
        let (g, [_, _, _, p, s]) = mac_graph();
        let mut d = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 700.0, 500.0]);
        for clock in [1000.0, 1200.0, 700.1, 2500.0] {
            assert_eq!(
                schedule_with_matrix(&g, &d, clock).unwrap(),
                schedule_with_matrix_dense(&g, &d, clock).unwrap(),
                "sparse vs dense diverged at {clock}"
            );
        }
        d.apply_subgraph_feedback(&[p, s], 900.0);
        d.reformulate(&g);
        assert_eq!(
            schedule_with_matrix(&g, &d, 1000.0).unwrap(),
            schedule_with_matrix_dense(&g, &d, 1000.0).unwrap()
        );
    }

    #[test]
    fn retarget_promotes_new_bucket_representatives() {
        // At 900ps the (u, u+1) pairs (800ps) need no constraint and the
        // (u, u+3) pairs dedupe against (u, u+2)'s bucket; tightening to
        // 700ps promotes pairs the sweep used to skip, and the promoted
        // system must still match both fresh emissions bit for bit.
        let g = not_chain(5);
        let d = DelayMatrix::initialize(&g, &[0.0, 400.0, 400.0, 400.0, 400.0, 400.0]);
        let options = ScheduleOptions { clock_period_ps: 900.0, max_stages: None };
        let empty = crate::delay::DirtySet::new(g.len());
        let mut engine = IncrementalScheduler::new(&g, &d, &options).unwrap();
        engine.reschedule(&g, &d, &empty).unwrap();
        let before = engine.sparsify_stats();
        engine.retarget(&g, &d, 700.0);
        let got = engine.reschedule(&g, &d, &empty).unwrap();
        assert_eq!(got, schedule_with_matrix(&g, &d, 700.0).unwrap());
        assert_eq!(got, schedule_with_matrix_dense(&g, &d, 700.0).unwrap());
        let after = engine.sparsify_stats();
        assert!(
            after.constraints_emitted > before.constraints_emitted,
            "the tighter period must emit (promote) new representatives: {after:?}"
        );
        // And the promotions survive a round trip back to the build period.
        engine.retarget(&g, &d, 900.0);
        let back = engine.reschedule(&g, &d, &empty).unwrap();
        assert_eq!(back, schedule_with_matrix(&g, &d, 900.0).unwrap());
    }

    #[test]
    fn incremental_scheduler_matches_from_scratch_across_relaxations() {
        // Chain of four 400ps ops at 1000ps, relaxed step by step; the
        // persistent engine must match a fresh solve bit-for-bit each time.
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let mut nodes = vec![a];
        let mut prev = a;
        for _ in 0..4 {
            prev = g.unary(OpKind::Not, prev).unwrap();
            nodes.push(prev);
        }
        g.set_output(prev);
        let mut d = DelayMatrix::initialize(&g, &[0.0, 400.0, 400.0, 400.0, 400.0]);
        let options = ScheduleOptions { clock_period_ps: 1000.0, max_stages: None };
        let mut engine = IncrementalScheduler::new(&g, &d, &options).unwrap();
        let first = engine.reschedule(&g, &d, &crate::delay::DirtySet::new(g.len())).unwrap();
        assert!(!engine.last_solve_was_warm(), "first solve is cold");
        assert_eq!(first, schedule_with_matrix(&g, &d, 1000.0).unwrap());
        let mut carry = crate::delay::DirtySet::new(g.len());
        for feedback in [900.0, 700.0, 500.0] {
            let mut from_scratch = d.clone();
            let mut dirty = d.apply_subgraph_feedback(&nodes[1..4], feedback);
            from_scratch.apply_subgraph_feedback(&nodes[1..4], feedback);
            from_scratch.reformulate(&g);
            dirty.union(&carry);
            carry = d.reformulate_incremental(&g, &dirty);
            dirty.union(&carry);
            assert_eq!(d, from_scratch, "matrix maintenance diverged at {feedback}");
            let warm = engine.reschedule(&g, &d, &dirty).unwrap();
            assert!(engine.last_solve_was_warm(), "relaxation at {feedback} must stay warm");
            let cold = schedule_with_matrix(&g, &d, 1000.0).unwrap();
            assert_eq!(warm, cold, "schedules diverged at feedback {feedback}");
            assert_eq!(
                warm,
                schedule_with_matrix_dense(&g, &d, 1000.0).unwrap(),
                "sparse diverged from dense at feedback {feedback}"
            );
        }
    }

    #[test]
    fn incremental_scheduler_rebuilds_on_non_monotone_delays() {
        // Build the engine against a fast matrix, then hand it a *slower*
        // one: a pair that never had a timing constraint now needs one, so
        // the promotion violates the old optimum and the solve runs cold —
        // and still matches from-scratch.
        let (g, _) = mac_graph();
        let fast = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 400.0, 300.0]);
        let slow = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 400.0, 700.0]);
        let options = ScheduleOptions { clock_period_ps: 1000.0, max_stages: None };
        let mut engine = IncrementalScheduler::new(&g, &fast, &options).unwrap();
        let empty = crate::delay::DirtySet::new(g.len());
        engine.reschedule(&g, &fast, &empty).unwrap();
        // Mark everything dirty and swap in the slower matrix.
        let mut all = crate::delay::DirtySet::new(g.len());
        for u in 0..g.len() {
            for v in 0..g.len() {
                all.mark(u, v);
            }
        }
        let rebuilt = engine.reschedule(&g, &slow, &all).unwrap();
        assert!(!engine.last_solve_was_warm(), "non-monotone delta must fall back cold");
        assert_eq!(rebuilt, schedule_with_matrix(&g, &slow, 1000.0).unwrap());
        assert_eq!(rebuilt.num_stages(), 2);
    }

    #[test]
    fn potentials_warm_start_a_fresh_engine_at_a_looser_clock() {
        // Cross-run reuse: solve a chain at a tight clock, export the
        // potentials, seed a fresh engine at a looser clock (every timing
        // bound relaxes, so the old optimum stays feasible). The seeded
        // initial solve must be warm and bit-identical to a cold solve.
        let g = not_chain(4);
        let d = DelayMatrix::initialize(&g, &[0.0, 400.0, 400.0, 400.0, 400.0]);
        let tight = ScheduleOptions { clock_period_ps: 1000.0, max_stages: None };
        let mut first = IncrementalScheduler::new(&g, &d, &tight).unwrap();
        first.reschedule(&g, &d, &crate::delay::DirtySet::new(g.len())).unwrap();
        let pi = first.potentials().expect("potentials available after a solve");

        let loose = ScheduleOptions { clock_period_ps: 1700.0, max_stages: None };
        let mut second = IncrementalScheduler::new(&g, &d, &loose).unwrap();
        assert!(second.warm_from_potentials(&pi), "tight optimum must validate when relaxed");
        let warm = second.reschedule(&g, &d, &crate::delay::DirtySet::new(g.len())).unwrap();
        assert!(second.last_solve_was_warm(), "imported potentials must warm the first solve");
        assert_eq!(warm, schedule_with_matrix(&g, &d, 1700.0).unwrap());
    }

    #[test]
    fn retargeting_periods_matches_fresh_engines_both_directions() {
        let g = not_chain(5);
        let d = DelayMatrix::initialize(&g, &[0.0, 400.0, 400.0, 400.0, 400.0, 400.0]);
        let options = ScheduleOptions { clock_period_ps: 900.0, max_stages: None };
        let mut engine = IncrementalScheduler::new(&g, &d, &options).unwrap();
        let empty = crate::delay::DirtySet::new(g.len());
        engine.reschedule(&g, &d, &empty).unwrap();
        // Ascending: every bound relaxes, the re-solve stays warm.
        for clock in [1000.0, 1300.0, 2100.0] {
            engine.retarget(&g, &d, clock);
            let got = engine.reschedule(&g, &d, &empty).unwrap();
            assert!(engine.last_solve_was_warm(), "ascending retarget to {clock} must be warm");
            assert_eq!(got, schedule_with_matrix(&g, &d, clock).unwrap(), "at {clock}");
        }
        // Same period again: a zero-delta re-solve, still warm, identical.
        engine.retarget(&g, &d, 2100.0);
        let again = engine.reschedule(&g, &d, &empty).unwrap();
        assert!(engine.last_solve_was_warm());
        assert_eq!(again, schedule_with_matrix(&g, &d, 2100.0).unwrap());
        // Descending below the build period: adjacent pairs (800ps) now
        // need constraints that were never emitted at 900ps; promoting them
        // against the relaxed optimum (and tightening surviving bounds)
        // drops the warm state — and still matches from-scratch.
        engine.retarget(&g, &d, 700.0);
        let tight = engine.reschedule(&g, &d, &empty).unwrap();
        assert!(!engine.last_solve_was_warm(), "a tightening retarget cannot count as warm");
        assert_eq!(tight, schedule_with_matrix(&g, &d, 700.0).unwrap());
        assert_eq!(tight.num_stages(), 5, "one op per stage at 700ps");
        // Below the feasibility floor the retargeted engine reports the
        // same error a fresh schedule would.
        engine.retarget(&g, &d, 300.0);
        assert!(matches!(
            engine.reschedule(&g, &d, &empty).unwrap_err(),
            ScheduleError::OperationExceedsClock { .. }
        ));
    }

    #[test]
    fn bulk_retarget_batches_the_drain() {
        // Widen the clock on a design with many flow-carrying timing
        // constraints: the retarget relaxes them all at once, so the warm
        // re-solve's excess arrives in bulk and the batched drain must
        // deliver its augmenting paths in fewer Dijkstra passes than paths
        // (the serial reference pays exactly one per path).
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        for _ in 0..10 {
            let mut prev = a;
            for _ in 0..7 {
                prev = g.unary(OpKind::Not, prev).unwrap();
            }
            g.set_output(prev);
        }
        let delays: Vec<f64> =
            std::iter::once(0.0).chain(std::iter::repeat(400.0)).take(g.len()).collect();
        let d = DelayMatrix::initialize(&g, &delays);
        let options = ScheduleOptions { clock_period_ps: 500.0, max_stages: None };
        let empty = crate::delay::DirtySet::new(g.len());
        let mut engine = IncrementalScheduler::new(&g, &d, &options).unwrap();
        engine.reschedule(&g, &d, &empty).unwrap();

        engine.retarget(&g, &d, 2500.0);
        let got = engine.reschedule(&g, &d, &empty).unwrap();
        assert!(engine.last_solve_was_warm(), "an ascending retarget re-solves warm");
        assert_eq!(got, schedule_with_matrix(&g, &d, 2500.0).unwrap());
        let stats = engine.last_drain_stats();
        assert!(stats.paths > 1, "the bulk retarget must re-route flow: {stats:?}");
        assert!(stats.dijkstras <= stats.paths, "{stats:?}");
        assert!(stats.dijkstras < stats.paths, "bulk retargets must batch: {stats:?}");
    }

    #[test]
    fn schedules_are_deterministic() {
        let (g, _) = mac_graph();
        let d = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 700.0, 500.0]);
        let s1 = schedule_with_matrix(&g, &d, 1000.0).unwrap();
        let s2 = schedule_with_matrix(&g, &d, 1000.0).unwrap();
        assert_eq!(s1, s2);
    }
}
