//! The staged ISDC iteration pipeline.
//!
//! [`run_isdc`](crate::run_isdc) used to be one monolithic loop; it is now
//! six explicit, reusable stages threaded through a shared
//! [`PipelineState`]:
//!
//! ```text
//!      +---------+    +--------+    +----------+    +----------+    +-------------+    +-------+
//!  +-->| Extract |--->| Dedupe |--->| Evaluate |--->| Feedback |--->| Reformulate |--->| Solve |--+
//!  |   +---------+    +--------+    +----------+    +----------+    +-------------+    +-------+  |
//!  |    subgraphs      distinct      oracle delay    Alg. 1 into     Alg. 2 worklist    warm LP   |
//!  |    from the       node sets     reports (par-   the matrix,     sweep + dirty      re-solve  |
//!  |    schedule       only          allel, cached)  dirty pairs     carry              (engine)  |
//!  +------------------------------- until registers stabilize --------------------------------+
//! ```
//!
//! Each stage is a unit struct implementing [`Stage`]; [`run_stage`] times
//! an invocation and accumulates a per-stage wall-clock profile
//! ([`PipelineState::profile`], surfaced as
//! [`IsdcResult::stage_profile`](crate::IsdcResult)). The driver composes
//! the stages in the fixed order above; tests and tools can run any stage
//! in isolation against a `PipelineState`.
//!
//! The state deliberately owns everything a *run* needs (delay matrix,
//! incremental LP engine, dirty-carry) and borrows everything that outlives
//! a run (graph, config, oracle) — [`IsdcSession`](crate::IsdcSession)
//! holds the cross-run assets and builds one `PipelineState` per run,
//! seeding the LP from the previous run's exported potentials.

use crate::delay::{DelayMatrix, DirtySet};
use crate::schedule::Schedule;
use crate::scheduler::{
    schedule_with_matrix, IncrementalScheduler, ScheduleError, ScheduleOptions, SparsifyStats,
};
use crate::subgraph::{extract_subgraphs, Subgraph};
use isdc_ir::{Graph, NodeId};
use isdc_sdc::DrainStats;
use isdc_synth::{evaluate_parallel_cancellable, DelayOracle, DelayReport, OpDelayModel};
use isdc_telemetry::{Counter, Histogram, MetricsFrame, Registry};
use std::collections::HashSet;
use std::time::{Duration, Instant};

use crate::driver::IsdcConfig;

/// The six fixed pipeline stages, in execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageKind {
    /// Subgraph extraction from the current schedule (§III-B).
    Extract,
    /// Drop node-set duplicates before paying for evaluation.
    Dedupe,
    /// Downstream oracle evaluation, parallel and (optionally) memoized.
    Evaluate,
    /// Alg. 1 delay updating into the matrix, tracked as dirty pairs.
    Feedback,
    /// Alg. 2 reformulation (worklist sweep on the incremental path).
    Reformulate,
    /// LP (re-)solve — warm through the persistent engine when possible.
    Solve,
}

impl StageKind {
    /// All stages in execution order.
    pub const ALL: [StageKind; 6] = [
        StageKind::Extract,
        StageKind::Dedupe,
        StageKind::Evaluate,
        StageKind::Feedback,
        StageKind::Reformulate,
        StageKind::Solve,
    ];

    /// The stage's display name.
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Extract => "extract",
            StageKind::Dedupe => "dedupe",
            StageKind::Evaluate => "evaluate",
            StageKind::Feedback => "feedback",
            StageKind::Reformulate => "reformulate",
            StageKind::Solve => "solve",
        }
    }

    fn index(self) -> usize {
        match self {
            StageKind::Extract => 0,
            StageKind::Dedupe => 1,
            StageKind::Evaluate => 2,
            StageKind::Feedback => 3,
            StageKind::Reformulate => 4,
            StageKind::Solve => 5,
        }
    }

    /// The stage's telemetry span name (static, for the trace layer).
    pub fn span_name(self) -> &'static str {
        match self {
            StageKind::Extract => "stage:extract",
            StageKind::Dedupe => "stage:dedupe",
            StageKind::Evaluate => "stage:evaluate",
            StageKind::Feedback => "stage:feedback",
            StageKind::Reformulate => "stage:reformulate",
            StageKind::Solve => "stage:solve",
        }
    }
}

/// Accumulated wall-clock cost of one stage across a run.
///
/// Since the telemetry refactor this is a *view*: the authoritative
/// cells live in the run's metrics [`Registry`] (`stage/{name}/ns` and
/// `stage/{name}/calls`), and [`PipelineState::profile`] reads them
/// back into this shape.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageProfile {
    /// Total time spent in the stage.
    pub total: Duration,
    /// Number of invocations (the initial solve counts for `Solve`).
    pub invocations: usize,
}

/// The registry-backed metric handles of one run. Every counter that
/// used to be a bespoke field (per-stage wall-clock, drain totals,
/// subgraph counts) records through here, so
/// [`IsdcResult::metrics`](crate::IsdcResult) is one coherent frame and
/// the legacy accessors are views over the same cells.
pub(crate) struct RunMetrics {
    registry: Registry,
    stage_ns: [Counter; 6],
    stage_calls: [Counter; 6],
    drain_dijkstras: Counter,
    drain_nodes_settled: Counter,
    drain_paths: Counter,
    drain_flow_pushed: Counter,
    lp_pairs_scanned: Counter,
    lp_constraints_emitted: Counter,
    lp_dominance_pruned: Counter,
    lp_bucket_deduped: Counter,
    /// Pipeline iterations completed (excluding the initial solve).
    pub(crate) iterations: Counter,
    /// Subgraphs sent to the oracle (post-dedupe), summed over iterations.
    pub(crate) subgraphs_evaluated: Counter,
    /// Distribution of individual LP solve times (log2 ns buckets).
    solve_ns: Histogram,
}

impl RunMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        let stage_ns =
            StageKind::ALL.map(|kind| registry.counter(&format!("stage/{}/ns", kind.name())));
        let stage_calls =
            StageKind::ALL.map(|kind| registry.counter(&format!("stage/{}/calls", kind.name())));
        let drain_dijkstras = registry.counter("drain/dijkstras");
        let drain_nodes_settled = registry.counter("drain/nodes_settled");
        let drain_paths = registry.counter("drain/paths");
        let drain_flow_pushed = registry.counter("drain/flow_pushed");
        let lp_pairs_scanned = registry.counter("lp/pairs_scanned");
        let lp_constraints_emitted = registry.counter("lp/constraints_emitted");
        let lp_dominance_pruned = registry.counter("lp/dominance_pruned");
        let lp_bucket_deduped = registry.counter("lp/bucket_deduped");
        let iterations = registry.counter("run/iterations");
        let subgraphs_evaluated = registry.counter("run/subgraphs_evaluated");
        let solve_ns = registry.histogram("solve/ns");
        Self {
            registry,
            stage_ns,
            stage_calls,
            drain_dijkstras,
            drain_nodes_settled,
            drain_paths,
            drain_flow_pushed,
            lp_pairs_scanned,
            lp_constraints_emitted,
            lp_dominance_pruned,
            lp_bucket_deduped,
            iterations,
            subgraphs_evaluated,
            solve_ns,
        }
    }

    fn record_stage(&self, kind: StageKind, elapsed: Duration) {
        self.stage_ns[kind.index()].add(elapsed.as_nanos() as u64);
        self.stage_calls[kind.index()].incr();
        if kind == StageKind::Solve {
            self.solve_ns.record(elapsed.as_nanos() as u64);
        }
    }

    fn record_drain(&self, drain: DrainStats) {
        self.drain_dijkstras.add(drain.dijkstras);
        self.drain_nodes_settled.add(drain.nodes_settled);
        self.drain_paths.add(drain.paths);
        self.drain_flow_pushed.add(drain.flow_pushed);
    }

    fn record_lp(&self, delta: SparsifyStats) {
        self.lp_pairs_scanned.add(delta.pairs_scanned);
        self.lp_constraints_emitted.add(delta.constraints_emitted);
        self.lp_dominance_pruned.add(delta.dominance_pruned);
        self.lp_bucket_deduped.add(delta.bucket_deduped);
    }

    fn stage_profile(&self, kind: StageKind) -> StageProfile {
        StageProfile {
            total: Duration::from_nanos(self.stage_ns[kind.index()].get()),
            invocations: self.stage_calls[kind.index()].get() as usize,
        }
    }
}

/// One ISDC iteration pipeline step: consumes `In`, produces `Out`, reading
/// and mutating the shared [`PipelineState`]. Implementations are plain
/// unit structs, so a stage carries no state of its own — everything lives
/// in the `PipelineState`, which is what makes stages individually
/// re-runnable and the whole pipeline session-hostable.
pub trait Stage<O: DelayOracle + ?Sized> {
    /// What the stage consumes.
    type In;
    /// What the stage produces.
    type Out;
    /// Which fixed stage this is (names the profile row).
    const KIND: StageKind;
    /// Executes the stage.
    ///
    /// # Errors
    ///
    /// Only the LP-backed stages fail; see
    /// [`ScheduleError`](crate::ScheduleError).
    fn run(
        &mut self,
        state: &mut PipelineState<'_, O>,
        input: Self::In,
    ) -> Result<Self::Out, ScheduleError>;
}

/// Runs one stage, recording its wall-clock cost in the state's profile.
/// Returns the stage output and the elapsed time of this invocation.
///
/// # Errors
///
/// Propagates the stage's error.
pub fn run_stage<O: DelayOracle + ?Sized, S: Stage<O>>(
    stage: &mut S,
    state: &mut PipelineState<'_, O>,
    input: S::In,
) -> Result<(S::Out, Duration), ScheduleError> {
    // Stage-boundary cancellation poll: one relaxed load when no deadline
    // is armed. Bailing between stages leaves the run's state objects
    // untouched since the last completed stage, so the caller's normal
    // error path (discard the run, keep the session) stays clean-cut.
    isdc_cancel::checkpoint().map_err(|_| ScheduleError::DeadlineExceeded)?;
    let _span = isdc_telemetry::span(S::KIND.span_name());
    let start = Instant::now();
    let out = stage.run(state, input)?;
    let elapsed = start.elapsed();
    state.record(S::KIND, elapsed);
    Ok((out, elapsed))
}

/// Cross-run warm-start material handed to [`PipelineState::new`], in
/// decreasing order of strength:
///
/// 1. `engine` — a solved [`IncrementalScheduler`] from an earlier run's
///    initial solve, retargeted to this run's clock period (system, flow
///    and potentials all survive; ascending sweeps re-solve warm, repeat
///    runs re-solve in O(1) off the cached solution);
/// 2. `potentials` — a bare potential vector (typically restored from a
///    cache snapshot), which skips the Bellman-Ford cold start when it
///    validates against this run's LP;
/// 3. nothing — the ordinary cold start.
#[derive(Default)]
pub struct RunSeed<'p> {
    /// An earlier run's engine, ready to retarget (strongest).
    pub engine: Option<IncrementalScheduler>,
    /// Fallback potentials when no engine is available.
    pub potentials: Option<&'p [i64]>,
    /// Capture a clone of the engine right after the initial solve, for
    /// the *next* run ([`PipelineState::take_initial_engine`]).
    pub export_engine: bool,
}

/// Everything one ISDC run owns, shared by all six stages.
///
/// Constructed by [`PipelineState::new`], which also performs the initial
/// (iteration 0) solve — warm-started from the caller's [`RunSeed`] when
/// it validates.
pub struct PipelineState<'a, O: ?Sized> {
    pub(crate) graph: &'a Graph,
    pub(crate) config: &'a IsdcConfig,
    pub(crate) oracle: &'a O,
    delays: DelayMatrix,
    engine: Option<IncrementalScheduler>,
    carry: DirtySet,
    schedule: Schedule,
    solver_warm: bool,
    solver_drain: DrainStats,
    initial_solve_time: Duration,
    initial_potentials: Option<Vec<i64>>,
    initial_engine: Option<IncrementalScheduler>,
    /// The engine's cumulative [`SparsifyStats`] as of the last recording —
    /// a session-carried engine arrives with prior runs' events already
    /// counted, so the `lp/*` metrics record deltas against this snapshot.
    lp_seen: SparsifyStats,
    metrics: RunMetrics,
}

impl<'a, O: DelayOracle + ?Sized> PipelineState<'a, O> {
    /// Initializes a run: naive delay matrix, LP build, initial solve.
    ///
    /// `seed` carries cross-run warm-start material (see [`RunSeed`]);
    /// anything that does not validate is silently ignored — it only costs
    /// the validation scan, never correctness.
    ///
    /// # Errors
    ///
    /// See [`ScheduleError`](crate::ScheduleError).
    pub fn new(
        graph: &'a Graph,
        model: &OpDelayModel,
        oracle: &'a O,
        config: &'a IsdcConfig,
        seed: RunSeed<'_>,
    ) -> Result<Self, ScheduleError> {
        let delays = DelayMatrix::initialize(graph, &model.all_node_delays(graph));
        let options = ScheduleOptions { clock_period_ps: config.clock_period_ps, max_stages: None };
        let init_span = isdc_telemetry::span("initial_solve");
        // A seeded engine's sparsify counters include previous runs; only
        // what this run's retarget + build adds should hit this run's
        // metrics.
        let lp_base =
            seed.engine.as_ref().map(IncrementalScheduler::sparsify_stats).unwrap_or_default();
        let solve_start = Instant::now();
        let mut engine = if config.incremental {
            Some(match seed.engine {
                Some(mut engine) => {
                    // The seed engine encodes the naive matrix at its old
                    // period; re-emit every bound at this run's period.
                    engine.retarget(graph, &delays, config.clock_period_ps);
                    engine
                }
                None => {
                    let mut engine = IncrementalScheduler::new(graph, &delays, &options)?;
                    if let Some(pi) = seed.potentials {
                        let _ = engine.warm_from_potentials(pi);
                    }
                    engine
                }
            })
        } else {
            None
        };
        let (schedule, solver_warm, solver_drain) = match engine.as_mut() {
            Some(engine) => {
                let schedule = engine.reschedule(graph, &delays, &DirtySet::new(graph.len()))?;
                (schedule, engine.last_solve_was_warm(), engine.last_drain_stats())
            }
            None => (
                schedule_with_matrix(graph, &delays, config.clock_period_ps)?,
                false,
                DrainStats::default(),
            ),
        };
        let initial_solve_time = solve_start.elapsed();
        drop(init_span);
        // Exported right after the naive-matrix solve: these are the
        // potentials (and, on request, the whole engine) a *future* run's
        // iteration 0 — same naive matrix — can seed from. The final
        // iteration's state would encode the feedback-relaxed matrix, which
        // the next run does not start from.
        let initial_potentials = engine.as_ref().and_then(IncrementalScheduler::potentials);
        let initial_engine = if seed.export_engine { engine.clone() } else { None };
        let metrics = RunMetrics::new();
        metrics.record_stage(StageKind::Solve, initial_solve_time);
        metrics.record_drain(solver_drain);
        let lp_seen = engine.as_ref().map(IncrementalScheduler::sparsify_stats).unwrap_or_default();
        metrics.record_lp(lp_seen.delta_since(&lp_base));
        Ok(Self {
            graph,
            config,
            oracle,
            delays,
            engine,
            carry: DirtySet::new(graph.len()),
            schedule,
            solver_warm,
            solver_drain,
            initial_solve_time,
            initial_potentials,
            initial_engine,
            lp_seen,
            metrics,
        })
    }

    /// The current schedule (initial solve, then updated by each `Solve`).
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The current (feedback-updated) delay matrix.
    pub fn delays(&self) -> &DelayMatrix {
        &self.delays
    }

    /// Whether the most recent solve was warm-started.
    pub fn solver_warm(&self) -> bool {
        self.solver_warm
    }

    /// SSP drain counters of the most recent solve (zeros on the cold
    /// non-incremental path, whose one-shot solver is consumed internally).
    pub fn solver_drain(&self) -> DrainStats {
        self.solver_drain
    }

    /// Wall-clock time of the initial (iteration 0) LP build + solve.
    pub fn initial_solve_time(&self) -> Duration {
        self.initial_solve_time
    }

    /// The LP potentials exported right after the initial solve — what a
    /// later run of the same design imports to skip its cold start.
    pub fn initial_potentials(&self) -> Option<&[i64]> {
        self.initial_potentials.as_deref()
    }

    /// Takes the engine clone captured after the initial solve (present
    /// only when the run was seeded with `export_engine`), ready to be
    /// retargeted by the next run.
    pub fn take_initial_engine(&mut self) -> Option<IncrementalScheduler> {
        self.initial_engine.take()
    }

    /// The per-stage wall-clock profile accumulated so far, in
    /// [`StageKind::ALL`] order — a view over the run's metrics registry.
    pub fn profile(&self) -> Vec<(StageKind, StageProfile)> {
        StageKind::ALL.iter().map(|&k| (k, self.metrics.stage_profile(k))).collect()
    }

    /// The run's metric handles (driver-internal).
    pub(crate) fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// A mergeable snapshot of every metric the run has recorded.
    pub fn metrics_frame(&self) -> MetricsFrame {
        self.metrics.registry.snapshot()
    }

    fn record(&mut self, kind: StageKind, elapsed: Duration) {
        self.metrics.record_stage(kind, elapsed);
    }
}

/// Stage 1: extract candidate subgraphs from the current schedule.
pub struct Extract;

impl<O: DelayOracle + ?Sized> Stage<O> for Extract {
    type In = ();
    type Out = Vec<Subgraph>;
    const KIND: StageKind = StageKind::Extract;

    fn run(
        &mut self,
        state: &mut PipelineState<'_, O>,
        _input: (),
    ) -> Result<Self::Out, ScheduleError> {
        Ok(extract_subgraphs(
            state.graph,
            &state.schedule,
            &state.delays,
            &state.config.extraction(),
        ))
    }
}

/// Stage 2: drop exact node-set duplicates, keeping first occurrences.
///
/// Identical sets would evaluate to identical reports and fold into the
/// matrix idempotently, so deduplication cannot change any schedule — it
/// only refunds the duplicate evaluations (which cost real synthesis time
/// when the oracle cache is off or cold).
pub struct Dedupe;

impl<O: DelayOracle + ?Sized> Stage<O> for Dedupe {
    type In = Vec<Subgraph>;
    type Out = Vec<Subgraph>;
    const KIND: StageKind = StageKind::Dedupe;

    fn run(
        &mut self,
        _state: &mut PipelineState<'_, O>,
        mut input: Self::In,
    ) -> Result<Self::Out, ScheduleError> {
        let mut seen: HashSet<Vec<u32>> = HashSet::with_capacity(input.len());
        input.retain(|sub| {
            let mut key: Vec<u32> = sub.nodes.iter().map(|n| n.0).collect();
            key.sort_unstable();
            seen.insert(key)
        });
        Ok(input)
    }
}

/// Stage 3: evaluate every subgraph through the downstream oracle, in
/// parallel. The reports ride along with their subgraphs.
pub struct Evaluate;

impl<O: DelayOracle + ?Sized> Stage<O> for Evaluate {
    type In = Vec<Subgraph>;
    type Out = (Vec<Subgraph>, Vec<DelayReport>);
    const KIND: StageKind = StageKind::Evaluate;

    fn run(
        &mut self,
        state: &mut PipelineState<'_, O>,
        input: Self::In,
    ) -> Result<Self::Out, ScheduleError> {
        let node_sets: Vec<Vec<NodeId>> = input.iter().map(|s| s.nodes.clone()).collect();
        state.metrics.subgraphs_evaluated.add(node_sets.len() as u64);
        let reports = evaluate_parallel_cancellable(
            state.oracle,
            state.graph,
            &node_sets,
            state.config.threads,
        )
        .map_err(|_| ScheduleError::DeadlineExceeded)?;
        Ok((input, reports))
    }
}

/// Stage 4: fold the reports into the delay matrix (Alg. 1, per-output
/// refinement), returning the exact dirty pairs.
pub struct Feedback;

impl<O: DelayOracle + ?Sized> Stage<O> for Feedback {
    type In = (Vec<Subgraph>, Vec<DelayReport>);
    type Out = DirtySet;
    const KIND: StageKind = StageKind::Feedback;

    fn run(
        &mut self,
        state: &mut PipelineState<'_, O>,
        (subgraphs, reports): Self::In,
    ) -> Result<Self::Out, ScheduleError> {
        let mut dirty = DirtySet::new(state.graph.len());
        for (sub, report) in subgraphs.iter().zip(&reports) {
            dirty.union(&state.delays.apply_subgraph_feedback_per_output(
                &sub.nodes,
                &report.output_arrivals,
                report.delay_ps,
            ));
        }
        Ok(dirty)
    }
}

/// Stage 5: re-derive all-pairs delays (Alg. 2). On the incremental path
/// this is the worklist sweep plus the dirty carry between passes (a pass's
/// backward-sweep writes are only consumed by the *next* pass's forward
/// sweep); on the cold path, a full pass.
pub struct Reformulate;

impl<O: DelayOracle + ?Sized> Stage<O> for Reformulate {
    type In = DirtySet;
    type Out = DirtySet;
    const KIND: StageKind = StageKind::Reformulate;

    fn run(
        &mut self,
        state: &mut PipelineState<'_, O>,
        mut dirty: Self::In,
    ) -> Result<Self::Out, ScheduleError> {
        if state.engine.is_some() {
            dirty.union(&state.carry);
            let swept = state.delays.reformulate_incremental(state.graph, &dirty);
            dirty.union(&swept);
            state.carry = swept;
        } else {
            let _ = state.delays.reformulate(state.graph);
        }
        Ok(dirty)
    }
}

/// Stage 6: re-solve the LP against the updated matrix — through the
/// persistent engine (warm for monotone updates) or a cold rebuild.
/// Updates [`PipelineState::schedule`] and returns whether the solve was
/// warm.
pub struct Solve;

impl<O: DelayOracle + ?Sized> Stage<O> for Solve {
    type In = DirtySet;
    type Out = bool;
    const KIND: StageKind = StageKind::Solve;

    fn run(
        &mut self,
        state: &mut PipelineState<'_, O>,
        dirty: Self::In,
    ) -> Result<Self::Out, ScheduleError> {
        isdc_faults::trip("solver/drain")
            .map_err(|fault| ScheduleError::Injected { site: fault.site })?;
        match state.engine.as_mut() {
            Some(engine) => {
                state.schedule = engine.reschedule(state.graph, &state.delays, &dirty)?;
                state.solver_warm = engine.last_solve_was_warm();
                state.solver_drain = engine.last_drain_stats();
                let lp_now = engine.sparsify_stats();
                state.metrics.record_lp(lp_now.delta_since(&state.lp_seen));
                state.lp_seen = lp_now;
            }
            None => {
                state.schedule =
                    schedule_with_matrix(state.graph, &state.delays, state.config.clock_period_ps)?;
                state.solver_warm = false;
                state.solver_drain = DrainStats::default();
            }
        }
        state.metrics.record_drain(state.solver_drain);
        Ok(state.solver_warm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::IsdcConfig;
    use isdc_ir::OpKind;
    use isdc_synth::SynthesisOracle;
    use isdc_techlib::TechLibrary;

    fn datapath() -> Graph {
        let mut g = Graph::new("dp");
        let inputs: Vec<_> = (0..6).map(|i| g.param(format!("p{i}"), 8)).collect();
        let mut acc = g.binary(OpKind::Add, inputs[0], inputs[1]).unwrap();
        for &p in &inputs[2..] {
            acc = g.binary(OpKind::Add, acc, p).unwrap();
        }
        g.set_output(acc);
        g
    }

    #[test]
    fn stages_compose_into_one_iteration() {
        let lib = TechLibrary::sky130();
        let model = OpDelayModel::new(lib.clone());
        let oracle = SynthesisOracle::new(lib);
        let g = datapath();
        let mut config = IsdcConfig::paper_defaults(2500.0);
        config.threads = 1;
        let mut state =
            PipelineState::new(&g, &model, &oracle, &config, RunSeed::default()).unwrap();
        let bits_before = state.schedule().register_bits(&g);

        let (subs, _) = run_stage(&mut Extract, &mut state, ()).unwrap();
        assert!(!subs.is_empty(), "a multi-stage pipeline must yield subgraphs");
        let (subs, _) = run_stage(&mut Dedupe, &mut state, subs).unwrap();
        let ((subs, reports), _) = run_stage(&mut Evaluate, &mut state, subs).unwrap();
        assert_eq!(subs.len(), reports.len());
        let (dirty, _) = run_stage(&mut Feedback, &mut state, (subs, reports)).unwrap();
        let (dirty, _) = run_stage(&mut Reformulate, &mut state, dirty).unwrap();
        let (warm, _) = run_stage(&mut Solve, &mut state, dirty).unwrap();
        assert!(warm, "monotone feedback must keep the engine warm");
        assert!(state.schedule().register_bits(&g) <= bits_before);

        // Every stage shows up in the profile exactly once (Solve twice:
        // the initial solve counts too).
        for (kind, cell) in state.profile() {
            let expected = if kind == StageKind::Solve { 2 } else { 1 };
            assert_eq!(cell.invocations, expected, "{}", kind.name());
        }
    }

    #[test]
    fn dedupe_drops_exact_node_set_duplicates_only() {
        let lib = TechLibrary::sky130();
        let model = OpDelayModel::new(lib.clone());
        let oracle = SynthesisOracle::new(lib);
        let g = datapath();
        let config = IsdcConfig::paper_defaults(2500.0);
        let mut state =
            PipelineState::new(&g, &model, &oracle, &config, RunSeed::default()).unwrap();
        let (subs, _) = run_stage(&mut Extract, &mut state, ()).unwrap();
        let mut doubled = subs.clone();
        doubled.extend(subs.iter().cloned());
        let (deduped, _) = run_stage(&mut Dedupe, &mut state, doubled).unwrap();
        let mut keys: Vec<Vec<u32>> = subs
            .iter()
            .map(|s| {
                let mut k: Vec<u32> = s.nodes.iter().map(|n| n.0).collect();
                k.sort_unstable();
                k
            })
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(deduped.len(), keys.len(), "one survivor per distinct node set");
    }
}
