//! The critical-path delay matrix `D[n][n]` and its maintenance algorithms.
//!
//! ISDC keeps the estimated critical-path delay of every connected node pair.
//! Three operations mirror the paper:
//!
//! - **Initialization** (Alg. 1 lines 1-9): `D[v][v]` is the individual op
//!   delay; `D[u][v]` for connected pairs is the naive longest sum-of-op-delay
//!   path; everything else is the `-1` "not connected" sentinel.
//! - **Delay updating** (Alg. 1 lines 10-14): after downstream tools report a
//!   subgraph delay `D(g)`, every pair covered by `g` is lowered to `D(g)` if
//!   that is an improvement. Updates are monotonically decreasing, which
//!   guarantees that timing constraints only ever relax.
//! - **Reformulation** (Alg. 2): re-derives all-pairs delays from the updated
//!   matrix with one forward and one backward topological sweep — an `O(n^2)`
//!   approximation of the exhaustive `O(n^3)` fixpoint, which is also
//!   provided ([`DelayMatrix::reformulate_exact`]) for the §IV-B accuracy
//!   study.

use isdc_ir::analysis::{reverse_topo_order, topo_order};
use isdc_ir::{Graph, NodeId};
use isdc_techlib::Picos;

/// Sentinel for "not connected".
const NOT_CONNECTED: f64 = -1.0;

/// Tolerance below which entry updates do not count as progress (guards the
/// fixpoint iteration against floating-point churn).
const EPS: f64 = 1e-9;

/// Dense matrix of estimated critical-path delays between node pairs.
///
/// `get(u, v)` is the estimated worst delay of any combinational path that
/// starts at `u`'s inputs and ends at `v`'s output (both ops' own delays
/// included), or `None` if `v` is not reachable from `u`.
#[derive(Clone, Debug, PartialEq)]
pub struct DelayMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DelayMatrix {
    /// Initializes from per-node delays: the naive longest-path estimate the
    /// original SDC scheduler uses (Alg. 1 lines 1-9).
    ///
    /// # Panics
    ///
    /// Panics if `node_delays.len() != graph.len()`.
    pub fn initialize(graph: &Graph, node_delays: &[Picos]) -> Self {
        let n = graph.len();
        assert_eq!(node_delays.len(), n, "one delay per node required");
        let mut m = Self { n, data: vec![NOT_CONNECTED; n * n] };
        // Longest path DP from every source u: one forward sweep per u.
        // best[v] = max over operands p of best[p] + d(v), seeded at u.
        for u in 0..n {
            m.data[u * n + u] = node_delays[u];
            for (v, &d_v) in node_delays.iter().enumerate().skip(u + 1) {
                let node = graph.node(NodeId(v as u32));
                let mut best = NOT_CONNECTED;
                for &p in &node.operands {
                    let via = m.data[u * n + p.index()];
                    if via != NOT_CONNECTED {
                        best = best.max(via + d_v);
                    }
                }
                m.data[u * n + v] = best;
            }
        }
        m
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the matrix covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The estimated critical-path delay from `u` to `v`, if connected.
    pub fn get(&self, u: NodeId, v: NodeId) -> Option<Picos> {
        let d = self.data[u.index() * self.n + v.index()];
        (d != NOT_CONNECTED).then_some(d)
    }

    /// The per-node individual delay (`D[v][v]`).
    pub fn node_delay(&self, v: NodeId) -> Picos {
        self.data[v.index() * self.n + v.index()]
    }

    /// Raw indexed access used by hot loops.
    #[inline]
    fn at(&self, u: usize, v: usize) -> f64 {
        self.data[u * self.n + v]
    }

    #[inline]
    fn set(&mut self, u: usize, v: usize, d: f64) {
        self.data[u * self.n + v] = d;
    }

    /// Alg. 1 lines 10-14: lowers every pair covered by an evaluated subgraph
    /// to the reported delay, when that is an improvement. Returns the number
    /// of entries updated.
    pub fn apply_subgraph_feedback(&mut self, members: &[NodeId], delay_ps: Picos) -> usize {
        let mut updated = 0;
        for &u in members {
            for &v in members {
                let cur = self.at(u.index(), v.index());
                if cur != NOT_CONNECTED && cur > delay_ps {
                    self.set(u.index(), v.index(), delay_ps);
                    updated += 1;
                }
            }
        }
        updated
    }

    /// A refinement of Alg. 1 for multi-output subgraphs: pairs ending at a
    /// subgraph output `v` are lowered to `v`'s own reported arrival rather
    /// than the subgraph-wide worst (`fallback_ps`, used for pairs ending at
    /// internal members). Windows benefit the most — their roots can have
    /// very different arrivals.
    ///
    /// Returns the number of entries updated.
    pub fn apply_subgraph_feedback_per_output(
        &mut self,
        members: &[NodeId],
        output_arrivals: &[(NodeId, Picos)],
        fallback_ps: Picos,
    ) -> usize {
        let mut updated = 0;
        for &u in members {
            for &v in members {
                let bound = output_arrivals
                    .iter()
                    .find(|&&(id, _)| id == v)
                    .map(|&(_, a)| a)
                    .unwrap_or(fallback_ps);
                let cur = self.at(u.index(), v.index());
                if cur != NOT_CONNECTED && cur > bound {
                    self.set(u.index(), v.index(), bound);
                    updated += 1;
                }
            }
        }
        updated
    }

    /// Alg. 2: the `O(n^2)`-per-sweep reformulation. One forward topological
    /// sweep recomputes each `D[u][v]` from `v`'s operands; one backward sweep
    /// catches the complementary paths. Entries only ever decrease (or fill in
    /// missing connectivity from the sweeps' perspective). Returns true if
    /// any entry changed.
    pub fn reformulate(&mut self, graph: &Graph) -> bool {
        let n = self.n;
        let mut changed = false;
        // Forward sweep (paper lines 2-12).
        let mut dv = vec![NOT_CONNECTED; n];
        for v in topo_order(graph) {
            let vi = v.index();
            let d_vv = self.at(vi, vi);
            dv.fill(NOT_CONNECTED);
            let node = graph.node(v);
            for &p in &node.operands {
                let pi = p.index();
                for (u, best) in dv.iter_mut().enumerate() {
                    let via = self.at(u, pi);
                    if via != NOT_CONNECTED && *best < via + d_vv {
                        *best = via + d_vv;
                    }
                }
            }
            for (u, &cand) in dv.iter().enumerate() {
                if cand != NOT_CONNECTED {
                    let cur = self.at(u, vi);
                    if cur > cand + EPS || cur == NOT_CONNECTED {
                        self.set(u, vi, cand);
                        changed = true;
                    }
                }
            }
        }
        // Backward sweep (paper lines 13-16): delays from u forward through
        // its users.
        let mut du = vec![NOT_CONNECTED; n];
        for u in reverse_topo_order(graph) {
            let ui = u.index();
            let d_uu = self.at(ui, ui);
            du.fill(NOT_CONNECTED);
            for &c in graph.users(u) {
                let ci = c.index();
                for (w, best) in du.iter_mut().enumerate() {
                    let via = self.at(ci, w);
                    if via != NOT_CONNECTED && *best < via + d_uu {
                        *best = via + d_uu;
                    }
                }
            }
            for (w, &cand) in du.iter().enumerate() {
                if cand != NOT_CONNECTED {
                    let cur = self.at(ui, w);
                    if cur > cand + EPS || cur == NOT_CONNECTED {
                        self.set(ui, w, cand);
                        changed = true;
                    }
                }
            }
        }
        changed
    }

    /// The exhaustive `O(n^3)`-worst-case reformulation the paper invokes as
    /// the reference: Alg. 2's recurrence iterated to a fixpoint. Each round
    /// costs the same as [`DelayMatrix::reformulate`]; rounds repeat until no
    /// entry changes (at most `n` rounds, since entries strictly decrease
    /// along dependency chains).
    ///
    /// A naive Floyd-Warshall splice `D[u][w] + D[w][v] - d(w)` is *not* a
    /// sound reference here: once feedback has fused `w`'s delay into a
    /// segment, subtracting the full isolated `d(w)` double-discounts and
    /// collapses estimates toward zero. The fixpoint of the paper's own
    /// recurrence is the meaningful exact target.
    ///
    /// Returns the number of rounds executed.
    pub fn reformulate_exact(&mut self, graph: &Graph) -> usize {
        let mut rounds = 0;
        while self.reformulate(graph) {
            rounds += 1;
            if rounds > self.n {
                debug_assert!(false, "reformulation failed to converge");
                break;
            }
        }
        rounds.max(1)
    }

    /// Largest relative difference `|a - b| / max(a, b)` against another
    /// matrix over pairs connected in both — the §IV-B accuracy metric.
    pub fn max_relative_gap(&self, other: &DelayMatrix) -> f64 {
        assert_eq!(self.n, other.n);
        let mut worst: f64 = 0.0;
        for i in 0..self.n * self.n {
            let (a, b) = (self.data[i], other.data[i]);
            if a != NOT_CONNECTED && b != NOT_CONNECTED {
                let denom = a.max(b);
                if denom > 0.0 {
                    worst = worst.max((a - b).abs() / denom);
                }
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isdc_ir::OpKind;

    /// a -> x -> y chain plus an independent z.
    fn chain() -> (Graph, [NodeId; 4]) {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let x = g.unary(OpKind::Not, a).unwrap();
        let y = g.unary(OpKind::Neg, x).unwrap();
        let z = g.param("z", 8);
        g.set_output(y);
        g.set_output(z);
        (g, [a, x, y, z])
    }

    #[test]
    fn initialize_sums_path_delays() {
        let (g, [a, x, y, z]) = chain();
        let d = DelayMatrix::initialize(&g, &[0.0, 10.0, 20.0, 0.0]);
        assert_eq!(d.get(a, a), Some(0.0));
        assert_eq!(d.get(x, x), Some(10.0));
        assert_eq!(d.get(a, x), Some(10.0));
        assert_eq!(d.get(a, y), Some(30.0));
        assert_eq!(d.get(x, y), Some(30.0));
        assert_eq!(d.get(a, z), None);
        assert_eq!(d.get(y, x), None); // direction matters
    }

    #[test]
    fn initialize_takes_longest_path() {
        // Diamond where one branch is slower.
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let fast = g.unary(OpKind::Not, a).unwrap();
        let slow = g.unary(OpKind::Neg, a).unwrap();
        let join = g.binary(OpKind::And, fast, slow).unwrap();
        g.set_output(join);
        let d = DelayMatrix::initialize(&g, &[0.0, 1.0, 100.0, 5.0]);
        assert_eq!(d.get(a, join), Some(105.0));
    }

    #[test]
    fn feedback_lowers_covered_pairs_only() {
        let (g, [a, x, y, _]) = chain();
        let mut d = DelayMatrix::initialize(&g, &[0.0, 10.0, 20.0, 0.0]);
        let updated = d.apply_subgraph_feedback(&[x, y], 12.0);
        // (x,y) lowered from 30; (x,x) not (10 < 12); (y,y) lowered from 20.
        assert_eq!(d.get(x, y), Some(12.0));
        assert_eq!(d.get(x, x), Some(10.0));
        assert_eq!(d.get(y, y), Some(12.0));
        assert_eq!(d.get(a, y), Some(30.0), "pairs outside the subgraph untouched");
        assert_eq!(updated, 2);
    }

    #[test]
    fn feedback_never_increases() {
        let (g, [_, x, y, _]) = chain();
        let mut d = DelayMatrix::initialize(&g, &[0.0, 10.0, 20.0, 0.0]);
        let before = d.clone();
        d.apply_subgraph_feedback(&[x, y], 1e9);
        assert_eq!(d, before);
    }

    #[test]
    fn reformulate_propagates_feedback_downstream() {
        // Chain a -> x -> y -> w; feedback lowers (x,y); the (a,w) estimate
        // must drop after reformulation.
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let x = g.unary(OpKind::Not, a).unwrap();
        let y = g.unary(OpKind::Neg, x).unwrap();
        let w = g.unary(OpKind::Not, y).unwrap();
        g.set_output(w);
        let delays = [0.0, 10.0, 20.0, 5.0];
        let mut d = DelayMatrix::initialize(&g, &delays);
        assert_eq!(d.get(a, w), Some(35.0));
        d.apply_subgraph_feedback(&[x, y], 15.0);
        d.reformulate(&g);
        // (a,w) should now reflect the shortened middle: 0 + 15 + 5 = 20.
        assert_eq!(d.get(a, w), Some(20.0));
        // Self-delays unchanged.
        assert_eq!(d.get(x, x), Some(10.0));
    }

    #[test]
    fn alg2_fixpoint_matches_single_sweep_on_chains() {
        // Verify Alg. 2 and its fixpoint against hand-computed values on a
        // chain a(0) -> n1..n6 with d(i) = i + 1 and feedback D({2,3,4}) = 3.
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let mut prev = a;
        for _ in 0..6 {
            prev = g.unary(OpKind::Not, prev).unwrap();
        }
        g.set_output(prev);
        let delays: Vec<f64> = (0..g.len()).map(|i| i as f64 + 1.0).collect();
        let mut approx = DelayMatrix::initialize(&g, &delays);
        let mut exact = approx.clone();
        let before = approx.clone();
        approx.apply_subgraph_feedback(&[NodeId(2), NodeId(3), NodeId(4)], 3.0);
        exact.apply_subgraph_feedback(&[NodeId(2), NodeId(3), NodeId(4)], 3.0);
        approx.reformulate(&g);
        exact.reformulate_exact(&g);
        // Alg. 2: D[2][5] = D[2][4] + d(5) = 3 + 6 = 9.
        assert_eq!(approx.get(NodeId(2), NodeId(5)), Some(9.0));
        // On a pure chain one sweep already reaches the fixpoint.
        assert_eq!(exact.get(NodeId(2), NodeId(5)), Some(9.0));
        assert!(approx.max_relative_gap(&exact) < 1e-9);
        // Both must stay at or below the pre-feedback estimates everywhere.
        for u in g.node_ids() {
            for v in g.node_ids() {
                if let Some(orig) = before.get(u, v) {
                    for m in [&approx, &exact] {
                        let cur = m.get(u, v).expect("connectivity preserved");
                        assert!(cur <= orig + 1e-9, "({u},{v}) grew {orig} -> {cur}");
                    }
                }
            }
        }
    }

    #[test]
    fn reformulations_never_increase_entries() {
        // Both sweeps may only relax constraints: no entry may grow, and no
        // connectivity may be invented or lost.
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let b = g.param("b", 8);
        let x = g.binary(OpKind::Add, a, b).unwrap();
        let l = g.unary(OpKind::Not, x).unwrap();
        let r = g.unary(OpKind::Neg, x).unwrap();
        let j = g.binary(OpKind::Xor, l, r).unwrap();
        let t = g.unary(OpKind::Not, j).unwrap();
        g.set_output(t);
        let delays = [0.0, 0.0, 30.0, 10.0, 12.0, 8.0, 6.0];
        let mut alg2 = DelayMatrix::initialize(&g, &delays);
        let mut exact = alg2.clone();
        let before = alg2.clone();
        for m in [vec![x, l], vec![l, j], vec![x, l, r, j]] {
            alg2.apply_subgraph_feedback(&m, 9.0);
            exact.apply_subgraph_feedback(&m, 9.0);
        }
        alg2.reformulate(&g);
        exact.reformulate_exact(&g);
        for u in g.node_ids() {
            for v in g.node_ids() {
                let b0 = before.get(u, v);
                for (name, m) in [("alg2", &alg2), ("exact", &exact)] {
                    let cur = m.get(u, v);
                    assert_eq!(cur.is_some(), b0.is_some(), "{name}: connectivity changed");
                    if let (Some(c), Some(orig)) = (cur, b0) {
                        assert!(c <= orig + 1e-9, "{name}: ({u},{v}) grew {orig} -> {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn per_output_feedback_is_tighter_than_uniform() {
        // Window with two roots: fast root f (arrival 5) and slow root s
        // (arrival 20). Uniform feedback lowers everything to 20; per-output
        // feedback lowers pairs ending at f to 5.
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let b = g.param("b", 8);
        let f = g.binary(OpKind::Xor, a, b).unwrap();
        let s = g.binary(OpKind::And, a, b).unwrap();
        g.set_output(f);
        g.set_output(s);
        let delays = [0.0, 0.0, 30.0, 40.0];
        let mut uniform = DelayMatrix::initialize(&g, &delays);
        let mut detailed = uniform.clone();
        let members = [a, b, f, s];
        uniform.apply_subgraph_feedback(&members, 20.0);
        detailed.apply_subgraph_feedback_per_output(&members, &[(f, 5.0), (s, 20.0)], 20.0);
        assert_eq!(uniform.get(a, f), Some(20.0));
        assert_eq!(detailed.get(a, f), Some(5.0), "f's own arrival wins");
        assert_eq!(detailed.get(a, s), Some(20.0));
        assert_eq!(detailed.get(f, f), Some(5.0));
    }

    #[test]
    fn per_output_feedback_uses_fallback_for_internal_members() {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let x = g.unary(OpKind::Not, a).unwrap();
        let y = g.unary(OpKind::Neg, x).unwrap();
        g.set_output(y);
        let mut m = DelayMatrix::initialize(&g, &[0.0, 50.0, 60.0]);
        // Only y is reported; x falls back to the subgraph-wide 80.
        m.apply_subgraph_feedback_per_output(&[x, y], &[(y, 70.0)], 80.0);
        assert_eq!(m.get(a, x), None.or(m.get(a, x)));
        assert_eq!(m.get(x, y), Some(70.0));
        assert_eq!(m.get(x, x), Some(50.0), "fallback 80 does not lower 50");
    }

    #[test]
    fn per_output_feedback_never_raises() {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let x = g.unary(OpKind::Not, a).unwrap();
        g.set_output(x);
        let mut m = DelayMatrix::initialize(&g, &[0.0, 10.0]);
        let before = m.clone();
        m.apply_subgraph_feedback_per_output(&[a, x], &[(x, 100.0)], 200.0);
        assert_eq!(m, before);
    }

    #[test]
    fn max_relative_gap_zero_for_identical() {
        let (g, _) = chain();
        let d = DelayMatrix::initialize(&g, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.max_relative_gap(&d.clone()), 0.0);
    }
}
