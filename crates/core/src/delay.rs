//! The critical-path delay matrix `D[n][n]` and its maintenance algorithms.
//!
//! ISDC keeps the estimated critical-path delay of every connected node pair.
//! Three operations mirror the paper:
//!
//! - **Initialization** (Alg. 1 lines 1-9): `D[v][v]` is the individual op
//!   delay; `D[u][v]` for connected pairs is the naive longest sum-of-op-delay
//!   path; everything else is the `-1` "not connected" sentinel.
//! - **Delay updating** (Alg. 1 lines 10-14): after downstream tools report a
//!   subgraph delay `D(g)`, every pair covered by `g` is lowered to `D(g)` if
//!   that is an improvement. Updates are monotonically decreasing, which
//!   guarantees that timing constraints only ever relax.
//! - **Reformulation** (Alg. 2): re-derives all-pairs delays from the updated
//!   matrix with one forward and one backward topological sweep — an `O(n^2)`
//!   approximation of the exhaustive `O(n^3)` fixpoint, which is also
//!   provided ([`DelayMatrix::reformulate_exact`]) for the §IV-B accuracy
//!   study.

use isdc_ir::analysis::{reverse_topo_order, topo_order};
use isdc_ir::{Graph, NodeId};
use isdc_techlib::Picos;
use std::collections::HashMap;

/// Sentinel for "not connected".
const NOT_CONNECTED: f64 = -1.0;

/// The entries of a [`DelayMatrix`] that changed, tracked both as exact
/// `(row, col)` pairs and as dirty-row/dirty-column index sets.
///
/// Feedback application and reformulation report their writes here; the
/// incremental scheduling engine consumes the set twice — the rows/columns
/// drive the worklist of [`DelayMatrix::reformulate_incremental`], and the
/// exact pairs tell the scheduler precisely which timing bounds to re-emit
/// ([`DirtySet::pairs`]; the `rows × cols` product is a sound
/// over-approximation, but on window-shaped feedback it is quadratically
/// larger than the true write set).
///
/// Pairs may repeat when the same entry is written more than once (merged
/// sets, forward + backward sweep); consumers must be idempotent per pair,
/// which bound re-emission is.
#[derive(Clone, Debug)]
pub struct DirtySet {
    rows: Vec<bool>,
    cols: Vec<bool>,
    row_list: Vec<u32>,
    col_list: Vec<u32>,
    pair_list: Vec<(u32, u32)>,
    /// Number of matrix entries written (counting duplicates across merged
    /// sets) — the old `apply_subgraph_feedback` return value.
    pub updated: usize,
}

impl DirtySet {
    /// An empty set over an `n`-node matrix.
    pub fn new(n: usize) -> Self {
        Self {
            rows: vec![false; n],
            cols: vec![false; n],
            row_list: Vec::new(),
            col_list: Vec::new(),
            pair_list: Vec::new(),
            updated: 0,
        }
    }

    /// Records a write to entry `(u, v)`.
    pub fn mark(&mut self, u: usize, v: usize) {
        self.updated += 1;
        self.pair_list.push((u as u32, v as u32));
        if !self.rows[u] {
            self.rows[u] = true;
            self.row_list.push(u as u32);
        }
        if !self.cols[v] {
            self.cols[v] = true;
            self.col_list.push(v as u32);
        }
    }

    /// True when no entry was written.
    pub fn is_empty(&self) -> bool {
        self.updated == 0
    }

    /// Whether some entry in row `u` changed.
    pub fn row_dirty(&self, u: NodeId) -> bool {
        self.rows[u.index()]
    }

    /// Whether some entry in column `v` changed.
    pub fn col_dirty(&self, v: NodeId) -> bool {
        self.cols[v.index()]
    }

    /// The dirty rows, in first-marked order.
    pub fn rows(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.row_list.iter().map(|&u| NodeId(u))
    }

    /// The dirty columns, in first-marked order.
    pub fn cols(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.col_list.iter().map(|&v| NodeId(v))
    }

    /// Every written entry as an exact `(row, col)` pair, in write order,
    /// possibly with repeats (see the type docs).
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.pair_list.iter().map(|&(u, v)| (NodeId(u), NodeId(v)))
    }

    /// Folds another set into this one.
    pub fn union(&mut self, other: &DirtySet) {
        assert_eq!(self.rows.len(), other.rows.len(), "dirty sets cover different matrices");
        for r in other.rows() {
            if !self.rows[r.index()] {
                self.rows[r.index()] = true;
                self.row_list.push(r.0);
            }
        }
        for c in other.cols() {
            if !self.cols[c.index()] {
                self.cols[c.index()] = true;
                self.col_list.push(c.0);
            }
        }
        self.pair_list.extend_from_slice(&other.pair_list);
        self.updated += other.updated;
    }
}

/// Tolerance below which entry updates do not count as progress (guards the
/// fixpoint iteration against floating-point churn).
const EPS: f64 = 1e-9;

/// Dense matrix of estimated critical-path delays between node pairs.
///
/// `get(u, v)` is the estimated worst delay of any combinational path that
/// starts at `u`'s inputs and ends at `v`'s output (both ops' own delays
/// included), or `None` if `v` is not reachable from `u`.
#[derive(Clone, Debug, PartialEq)]
pub struct DelayMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DelayMatrix {
    /// Initializes from per-node delays: the naive longest-path estimate the
    /// original SDC scheduler uses (Alg. 1 lines 1-9).
    ///
    /// # Panics
    ///
    /// Panics if `node_delays.len() != graph.len()`.
    pub fn initialize(graph: &Graph, node_delays: &[Picos]) -> Self {
        let n = graph.len();
        assert_eq!(node_delays.len(), n, "one delay per node required");
        let mut m = Self { n, data: vec![NOT_CONNECTED; n * n] };
        // Longest path DP from every source u: one forward sweep per u.
        // best[v] = max over operands p of best[p] + d(v), seeded at u.
        for u in 0..n {
            m.data[u * n + u] = node_delays[u];
            for (v, &d_v) in node_delays.iter().enumerate().skip(u + 1) {
                let node = graph.node(NodeId(v as u32));
                let mut best = NOT_CONNECTED;
                for &p in &node.operands {
                    let via = m.data[u * n + p.index()];
                    if via != NOT_CONNECTED {
                        best = best.max(via + d_v);
                    }
                }
                m.data[u * n + v] = best;
            }
        }
        m
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the matrix covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The estimated critical-path delay from `u` to `v`, if connected.
    pub fn get(&self, u: NodeId, v: NodeId) -> Option<Picos> {
        let d = self.data[u.index() * self.n + v.index()];
        (d != NOT_CONNECTED).then_some(d)
    }

    /// The per-node individual delay (`D[v][v]`).
    pub fn node_delay(&self, v: NodeId) -> Picos {
        self.data[v.index() * self.n + v.index()]
    }

    /// Raw indexed access used by hot loops.
    #[inline]
    fn at(&self, u: usize, v: usize) -> f64 {
        self.data[u * self.n + v]
    }

    #[inline]
    fn set(&mut self, u: usize, v: usize, d: f64) {
        self.data[u * self.n + v] = d;
    }

    /// Alg. 1 lines 10-14: lowers every pair covered by an evaluated subgraph
    /// to the reported delay, when that is an improvement. Returns the dirty
    /// rows/columns (with [`DirtySet::updated`] counting changed entries).
    pub fn apply_subgraph_feedback(&mut self, members: &[NodeId], delay_ps: Picos) -> DirtySet {
        let mut dirty = DirtySet::new(self.n);
        for &u in members {
            for &v in members {
                let cur = self.at(u.index(), v.index());
                if cur != NOT_CONNECTED && cur > delay_ps {
                    self.set(u.index(), v.index(), delay_ps);
                    dirty.mark(u.index(), v.index());
                }
            }
        }
        dirty
    }

    /// A refinement of Alg. 1 for multi-output subgraphs: pairs ending at a
    /// subgraph output `v` are lowered to `v`'s own reported arrival rather
    /// than the subgraph-wide worst (`fallback_ps`, used for pairs ending at
    /// internal members). Windows benefit the most — their roots can have
    /// very different arrivals.
    ///
    /// Returns the dirty rows/columns (with [`DirtySet::updated`] counting
    /// changed entries).
    pub fn apply_subgraph_feedback_per_output(
        &mut self,
        members: &[NodeId],
        output_arrivals: &[(NodeId, Picos)],
        fallback_ps: Picos,
    ) -> DirtySet {
        let mut dirty = DirtySet::new(self.n);
        // One arrival lookup per call instead of a linear scan per pair.
        let arrivals: HashMap<NodeId, Picos> = output_arrivals.iter().copied().collect();
        for &v in members {
            let bound = arrivals.get(&v).copied().unwrap_or(fallback_ps);
            for &u in members {
                let cur = self.at(u.index(), v.index());
                if cur != NOT_CONNECTED && cur > bound {
                    self.set(u.index(), v.index(), bound);
                    dirty.mark(u.index(), v.index());
                }
            }
        }
        dirty
    }

    /// Alg. 2: the `O(n^2)`-per-sweep reformulation. One forward topological
    /// sweep recomputes each `D[u][v]` from `v`'s operands; one backward sweep
    /// catches the complementary paths. Entries only ever decrease (or fill in
    /// missing connectivity from the sweeps' perspective). Returns true if
    /// any entry changed.
    pub fn reformulate(&mut self, graph: &Graph) -> bool {
        !self.reformulate_tracked(graph).is_empty()
    }

    /// [`DelayMatrix::reformulate`], reporting every written entry — the
    /// seed for worklist-driven follow-up rounds
    /// ([`DelayMatrix::reformulate_exact`]).
    fn reformulate_tracked(&mut self, graph: &Graph) -> DirtySet {
        let n = self.n;
        let mut dirty = DirtySet::new(n);
        // Forward sweep (paper lines 2-12).
        let mut dv = vec![NOT_CONNECTED; n];
        for v in topo_order(graph) {
            self.forward_node(graph, v, &mut dv, |u, vi| dirty.mark(u, vi));
        }
        // Backward sweep (paper lines 13-16): delays from u forward through
        // its users.
        let mut du = vec![NOT_CONNECTED; n];
        for u in reverse_topo_order(graph) {
            self.backward_node(graph, u, &mut du, |ui, w| dirty.mark(ui, w));
        }
        dirty
    }

    /// One forward-sweep step: recomputes column `v` from its operands'
    /// columns and `D[v][v]`. `on_write(u, v)` fires for every entry
    /// lowered (or filled in). Returns true if anything changed.
    fn forward_node(
        &mut self,
        graph: &Graph,
        v: NodeId,
        dv: &mut [f64],
        mut on_write: impl FnMut(usize, usize),
    ) -> bool {
        let vi = v.index();
        let d_vv = self.at(vi, vi);
        dv.fill(NOT_CONNECTED);
        for &p in &graph.node(v).operands {
            let pi = p.index();
            for (u, best) in dv.iter_mut().enumerate() {
                let via = self.at(u, pi);
                if via != NOT_CONNECTED && *best < via + d_vv {
                    *best = via + d_vv;
                }
            }
        }
        let mut changed = false;
        for (u, &cand) in dv.iter().enumerate() {
            if cand != NOT_CONNECTED {
                let cur = self.at(u, vi);
                if cur > cand + EPS || cur == NOT_CONNECTED {
                    self.set(u, vi, cand);
                    on_write(u, vi);
                    changed = true;
                }
            }
        }
        changed
    }

    /// One backward-sweep step: recomputes row `u` from its users' rows and
    /// `D[u][u]`. `on_write(u, w)` fires for every entry lowered (or filled
    /// in). Returns true if anything changed.
    fn backward_node(
        &mut self,
        graph: &Graph,
        u: NodeId,
        du: &mut [f64],
        mut on_write: impl FnMut(usize, usize),
    ) -> bool {
        let ui = u.index();
        let d_uu = self.at(ui, ui);
        du.fill(NOT_CONNECTED);
        for &c in graph.users(u) {
            let ci = c.index();
            for (w, best) in du.iter_mut().enumerate() {
                let via = self.at(ci, w);
                if via != NOT_CONNECTED && *best < via + d_uu {
                    *best = via + d_uu;
                }
            }
        }
        let mut changed = false;
        for (w, &cand) in du.iter().enumerate() {
            if cand != NOT_CONNECTED {
                let cur = self.at(ui, w);
                if cur > cand + EPS || cur == NOT_CONNECTED {
                    self.set(ui, w, cand);
                    on_write(ui, w);
                    changed = true;
                }
            }
        }
        changed
    }

    /// Worklist-driven Alg. 2: one reformulation pass that only re-sweeps
    /// nodes whose inputs can have changed, instead of all `n`. Produces a
    /// matrix bit-identical to [`DelayMatrix::reformulate`] from the same
    /// state, provided `dirty` covers every entry written since the
    /// previous pass.
    ///
    /// A node is a no-op for the forward sweep unless an operand's column,
    /// or its own diagonal, changed since the sweep last visited it (the
    /// recomputation is a pure function of those inputs; a fresh
    /// [`DelayMatrix::initialize`] matrix is already at the sweeps'
    /// fixpoint). Writes made *during* the pass are chased in-pass where
    /// their readers still lie ahead (forward writes are only read by
    /// topologically later nodes; backward row-writes only by
    /// reverse-topologically later ones).
    ///
    /// The one escape is backward-sweep writes landing in columns whose
    /// forward readers already ran — exactly what a full second
    /// [`DelayMatrix::reformulate`] pass would pick up. They are reported in
    /// the returned set, which callers must therefore fold into the `dirty`
    /// set of the **next** call (the driver carries it across iterations).
    pub fn reformulate_incremental(&mut self, graph: &Graph, dirty: &DirtySet) -> DirtySet {
        let n = self.n;
        let mut changed = DirtySet::new(n);
        if dirty.is_empty() {
            return changed;
        }
        let mut process_fwd = vec![false; n];
        let mut process_bwd = vec![false; n];
        for c in dirty.cols() {
            for &user in graph.users(c) {
                process_fwd[user.index()] = true;
            }
        }
        for r in dirty.rows() {
            for &p in &graph.node(r).operands {
                process_bwd[p.index()] = true;
            }
            // A dirty (r, r) entry means D[r][r] itself may have dropped
            // (feedback lowers diagonals too); r must re-run both sweeps.
            // Row+col dirtiness over-approximates that, which is safe:
            // processing an extra node is a no-op, never a divergence.
            if dirty.col_dirty(r) {
                process_fwd[r.index()] = true;
                process_bwd[r.index()] = true;
            }
        }

        let mut fwd_wrote_row = vec![false; n];
        let mut dv = vec![NOT_CONNECTED; n];
        for v in topo_order(graph) {
            if !process_fwd[v.index()] {
                continue;
            }
            let wrote = self.forward_node(graph, v, &mut dv, |u, vi| {
                changed.mark(u, vi);
                fwd_wrote_row[u] = true;
            });
            if wrote {
                for &user in graph.users(v) {
                    process_fwd[user.index()] = true;
                }
            }
        }
        // Forward writes to row u are read by the backward sweep at u's
        // operands (their candidate paths route through u's row).
        for (u, &wrote) in fwd_wrote_row.iter().enumerate() {
            if wrote {
                for &p in &graph.node(NodeId(u as u32)).operands {
                    process_bwd[p.index()] = true;
                }
            }
        }

        let mut du = vec![NOT_CONNECTED; n];
        for u in reverse_topo_order(graph) {
            if !process_bwd[u.index()] {
                continue;
            }
            let wrote = self.backward_node(graph, u, &mut du, |ui, w| {
                changed.mark(ui, w);
            });
            if wrote {
                for &p in &graph.node(u).operands {
                    process_bwd[p.index()] = true;
                }
            }
        }
        changed
    }

    /// The exhaustive `O(n^3)`-worst-case reformulation the paper invokes as
    /// the reference: Alg. 2's recurrence iterated to a fixpoint. Each round
    /// costs the same as [`DelayMatrix::reformulate`]; rounds repeat until no
    /// entry changes (at most `n` rounds, since entries strictly decrease
    /// along dependency chains).
    ///
    /// A naive Floyd-Warshall splice `D[u][w] + D[w][v] - d(w)` is *not* a
    /// sound reference here: once feedback has fused `w`'s delay into a
    /// segment, subtracting the full isolated `d(w)` double-discounts and
    /// collapses estimates toward zero. The fixpoint of the paper's own
    /// recurrence is the meaningful exact target.
    ///
    /// Round 1 is a full pass; every later round reuses the worklist sweep
    /// ([`DelayMatrix::reformulate_incremental`]) seeded with the previous
    /// round's writes, which is bit-identical to another full pass but only
    /// touches nodes downstream of actual changes — late rounds converge on
    /// small dirty regions, so they get cheap instead of staying `O(n^2)`.
    ///
    /// Returns the number of rounds that changed at least one entry (at
    /// least 1, matching the historical count of full passes).
    pub fn reformulate_exact(&mut self, graph: &Graph) -> usize {
        let mut dirty = self.reformulate_tracked(graph);
        if dirty.is_empty() {
            return 1;
        }
        let mut rounds = 1;
        loop {
            // The previous round's write set covers everything a full pass
            // could see changed, including its own backward-sweep escapes —
            // exactly the worklist sweep's carry contract.
            let next = self.reformulate_incremental(graph, &dirty);
            if next.is_empty() {
                break;
            }
            rounds += 1;
            if rounds > self.n {
                debug_assert!(false, "reformulation failed to converge");
                break;
            }
            dirty = next;
        }
        rounds
    }

    /// Largest relative difference `|a - b| / max(a, b)` against another
    /// matrix over pairs connected in both — the §IV-B accuracy metric.
    pub fn max_relative_gap(&self, other: &DelayMatrix) -> f64 {
        assert_eq!(self.n, other.n);
        let mut worst: f64 = 0.0;
        for i in 0..self.n * self.n {
            let (a, b) = (self.data[i], other.data[i]);
            if a != NOT_CONNECTED && b != NOT_CONNECTED {
                let denom = a.max(b);
                if denom > 0.0 {
                    worst = worst.max((a - b).abs() / denom);
                }
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isdc_ir::OpKind;

    /// a -> x -> y chain plus an independent z.
    fn chain() -> (Graph, [NodeId; 4]) {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let x = g.unary(OpKind::Not, a).unwrap();
        let y = g.unary(OpKind::Neg, x).unwrap();
        let z = g.param("z", 8);
        g.set_output(y);
        g.set_output(z);
        (g, [a, x, y, z])
    }

    #[test]
    fn initialize_sums_path_delays() {
        let (g, [a, x, y, z]) = chain();
        let d = DelayMatrix::initialize(&g, &[0.0, 10.0, 20.0, 0.0]);
        assert_eq!(d.get(a, a), Some(0.0));
        assert_eq!(d.get(x, x), Some(10.0));
        assert_eq!(d.get(a, x), Some(10.0));
        assert_eq!(d.get(a, y), Some(30.0));
        assert_eq!(d.get(x, y), Some(30.0));
        assert_eq!(d.get(a, z), None);
        assert_eq!(d.get(y, x), None); // direction matters
    }

    #[test]
    fn initialize_takes_longest_path() {
        // Diamond where one branch is slower.
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let fast = g.unary(OpKind::Not, a).unwrap();
        let slow = g.unary(OpKind::Neg, a).unwrap();
        let join = g.binary(OpKind::And, fast, slow).unwrap();
        g.set_output(join);
        let d = DelayMatrix::initialize(&g, &[0.0, 1.0, 100.0, 5.0]);
        assert_eq!(d.get(a, join), Some(105.0));
    }

    #[test]
    fn feedback_lowers_covered_pairs_only() {
        let (g, [a, x, y, _]) = chain();
        let mut d = DelayMatrix::initialize(&g, &[0.0, 10.0, 20.0, 0.0]);
        let dirty = d.apply_subgraph_feedback(&[x, y], 12.0);
        // (x,y) lowered from 30; (x,x) not (10 < 12); (y,y) lowered from 20.
        assert_eq!(d.get(x, y), Some(12.0));
        assert_eq!(d.get(x, x), Some(10.0));
        assert_eq!(d.get(y, y), Some(12.0));
        assert_eq!(d.get(a, y), Some(30.0), "pairs outside the subgraph untouched");
        assert_eq!(dirty.updated, 2);
        // Dirty tracking: entries (x,y) and (y,y) changed.
        assert!(dirty.row_dirty(x) && dirty.row_dirty(y));
        assert!(!dirty.row_dirty(a));
        assert!(dirty.col_dirty(y) && !dirty.col_dirty(x));
    }

    #[test]
    fn feedback_never_increases() {
        let (g, [_, x, y, _]) = chain();
        let mut d = DelayMatrix::initialize(&g, &[0.0, 10.0, 20.0, 0.0]);
        let before = d.clone();
        d.apply_subgraph_feedback(&[x, y], 1e9);
        assert_eq!(d, before);
    }

    #[test]
    fn reformulate_propagates_feedback_downstream() {
        // Chain a -> x -> y -> w; feedback lowers (x,y); the (a,w) estimate
        // must drop after reformulation.
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let x = g.unary(OpKind::Not, a).unwrap();
        let y = g.unary(OpKind::Neg, x).unwrap();
        let w = g.unary(OpKind::Not, y).unwrap();
        g.set_output(w);
        let delays = [0.0, 10.0, 20.0, 5.0];
        let mut d = DelayMatrix::initialize(&g, &delays);
        assert_eq!(d.get(a, w), Some(35.0));
        d.apply_subgraph_feedback(&[x, y], 15.0);
        d.reformulate(&g);
        // (a,w) should now reflect the shortened middle: 0 + 15 + 5 = 20.
        assert_eq!(d.get(a, w), Some(20.0));
        // Self-delays unchanged.
        assert_eq!(d.get(x, x), Some(10.0));
    }

    #[test]
    fn alg2_fixpoint_matches_single_sweep_on_chains() {
        // Verify Alg. 2 and its fixpoint against hand-computed values on a
        // chain a(0) -> n1..n6 with d(i) = i + 1 and feedback D({2,3,4}) = 3.
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let mut prev = a;
        for _ in 0..6 {
            prev = g.unary(OpKind::Not, prev).unwrap();
        }
        g.set_output(prev);
        let delays: Vec<f64> = (0..g.len()).map(|i| i as f64 + 1.0).collect();
        let mut approx = DelayMatrix::initialize(&g, &delays);
        let mut exact = approx.clone();
        let before = approx.clone();
        approx.apply_subgraph_feedback(&[NodeId(2), NodeId(3), NodeId(4)], 3.0);
        exact.apply_subgraph_feedback(&[NodeId(2), NodeId(3), NodeId(4)], 3.0);
        approx.reformulate(&g);
        exact.reformulate_exact(&g);
        // Alg. 2: D[2][5] = D[2][4] + d(5) = 3 + 6 = 9.
        assert_eq!(approx.get(NodeId(2), NodeId(5)), Some(9.0));
        // On a pure chain one sweep already reaches the fixpoint.
        assert_eq!(exact.get(NodeId(2), NodeId(5)), Some(9.0));
        assert!(approx.max_relative_gap(&exact) < 1e-9);
        // Both must stay at or below the pre-feedback estimates everywhere.
        for u in g.node_ids() {
            for v in g.node_ids() {
                if let Some(orig) = before.get(u, v) {
                    for m in [&approx, &exact] {
                        let cur = m.get(u, v).expect("connectivity preserved");
                        assert!(cur <= orig + 1e-9, "({u},{v}) grew {orig} -> {cur}");
                    }
                }
            }
        }
    }

    #[test]
    fn reformulations_never_increase_entries() {
        // Both sweeps may only relax constraints: no entry may grow, and no
        // connectivity may be invented or lost.
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let b = g.param("b", 8);
        let x = g.binary(OpKind::Add, a, b).unwrap();
        let l = g.unary(OpKind::Not, x).unwrap();
        let r = g.unary(OpKind::Neg, x).unwrap();
        let j = g.binary(OpKind::Xor, l, r).unwrap();
        let t = g.unary(OpKind::Not, j).unwrap();
        g.set_output(t);
        let delays = [0.0, 0.0, 30.0, 10.0, 12.0, 8.0, 6.0];
        let mut alg2 = DelayMatrix::initialize(&g, &delays);
        let mut exact = alg2.clone();
        let before = alg2.clone();
        for m in [vec![x, l], vec![l, j], vec![x, l, r, j]] {
            alg2.apply_subgraph_feedback(&m, 9.0);
            exact.apply_subgraph_feedback(&m, 9.0);
        }
        alg2.reformulate(&g);
        exact.reformulate_exact(&g);
        for u in g.node_ids() {
            for v in g.node_ids() {
                let b0 = before.get(u, v);
                for (name, m) in [("alg2", &alg2), ("exact", &exact)] {
                    let cur = m.get(u, v);
                    assert_eq!(cur.is_some(), b0.is_some(), "{name}: connectivity changed");
                    if let (Some(c), Some(orig)) = (cur, b0) {
                        assert!(c <= orig + 1e-9, "{name}: ({u},{v}) grew {orig} -> {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn per_output_feedback_is_tighter_than_uniform() {
        // Window with two roots: fast root f (arrival 5) and slow root s
        // (arrival 20). Uniform feedback lowers everything to 20; per-output
        // feedback lowers pairs ending at f to 5.
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let b = g.param("b", 8);
        let f = g.binary(OpKind::Xor, a, b).unwrap();
        let s = g.binary(OpKind::And, a, b).unwrap();
        g.set_output(f);
        g.set_output(s);
        let delays = [0.0, 0.0, 30.0, 40.0];
        let mut uniform = DelayMatrix::initialize(&g, &delays);
        let mut detailed = uniform.clone();
        let members = [a, b, f, s];
        uniform.apply_subgraph_feedback(&members, 20.0);
        detailed.apply_subgraph_feedback_per_output(&members, &[(f, 5.0), (s, 20.0)], 20.0);
        assert_eq!(uniform.get(a, f), Some(20.0));
        assert_eq!(detailed.get(a, f), Some(5.0), "f's own arrival wins");
        assert_eq!(detailed.get(a, s), Some(20.0));
        assert_eq!(detailed.get(f, f), Some(5.0));
    }

    #[test]
    fn per_output_feedback_uses_fallback_for_internal_members() {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let x = g.unary(OpKind::Not, a).unwrap();
        let y = g.unary(OpKind::Neg, x).unwrap();
        g.set_output(y);
        let mut m = DelayMatrix::initialize(&g, &[0.0, 50.0, 60.0]);
        // Only y is reported; x falls back to the subgraph-wide 80.
        m.apply_subgraph_feedback_per_output(&[x, y], &[(y, 70.0)], 80.0);
        assert_eq!(m.get(a, x), Some(50.0), "pair outside the subgraph untouched");
        assert_eq!(m.get(x, y), Some(70.0));
        assert_eq!(m.get(x, x), Some(50.0), "fallback 80 does not lower 50");
    }

    #[test]
    fn per_output_feedback_never_raises() {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let x = g.unary(OpKind::Not, a).unwrap();
        g.set_output(x);
        let mut m = DelayMatrix::initialize(&g, &[0.0, 10.0]);
        let before = m.clone();
        m.apply_subgraph_feedback_per_output(&[a, x], &[(x, 100.0)], 200.0);
        assert_eq!(m, before);
    }

    #[test]
    fn incremental_reformulation_matches_full_pass() {
        // Chain a -> x -> y -> w: feedback on {x, y}, then both maintenance
        // strategies; matrices must be bit-identical after every pass.
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let x = g.unary(OpKind::Not, a).unwrap();
        let y = g.unary(OpKind::Neg, x).unwrap();
        let w = g.unary(OpKind::Not, y).unwrap();
        g.set_output(w);
        let delays = [0.0, 10.0, 20.0, 5.0];
        let mut full = DelayMatrix::initialize(&g, &delays);
        let mut inc = full.clone();
        let mut carry = DirtySet::new(g.len());
        for feedback in [15.0, 9.0, 4.0] {
            full.apply_subgraph_feedback(&[x, y], feedback);
            full.reformulate(&g);
            let mut dirty = inc.apply_subgraph_feedback(&[x, y], feedback);
            dirty.union(&carry);
            carry = inc.reformulate_incremental(&g, &dirty);
            assert_eq!(inc, full, "divergence after feedback {feedback}");
        }
    }

    #[test]
    fn incremental_reformulation_with_empty_dirty_set_is_noop() {
        let (g, _) = chain();
        let mut d = DelayMatrix::initialize(&g, &[1.0, 2.0, 3.0, 4.0]);
        let before = d.clone();
        let changed = d.reformulate_incremental(&g, &DirtySet::new(g.len()));
        assert!(changed.is_empty());
        assert_eq!(d, before);
    }

    #[test]
    fn dirty_set_union_merges_rows_cols_and_counts() {
        let mut a = DirtySet::new(4);
        a.mark(0, 1);
        let mut b = DirtySet::new(4);
        b.mark(2, 1);
        b.mark(2, 3);
        a.union(&b);
        assert_eq!(a.updated, 3);
        assert_eq!(a.rows().collect::<Vec<_>>(), vec![NodeId(0), NodeId(2)]);
        assert_eq!(a.cols().collect::<Vec<_>>(), vec![NodeId(1), NodeId(3)]);
        assert_eq!(
            a.pairs().collect::<Vec<_>>(),
            vec![(NodeId(0), NodeId(1)), (NodeId(2), NodeId(1)), (NodeId(2), NodeId(3))],
        );
        assert!(!a.is_empty());
    }

    #[test]
    fn dirty_pairs_are_exactly_the_written_entries() {
        // Window feedback touches a handful of entries; the exact pair list
        // must name them all, and stay far below the rows x cols product.
        let (g, [_, x, y, _]) = chain();
        let mut d = DelayMatrix::initialize(&g, &[0.0, 10.0, 20.0, 0.0]);
        let dirty = d.apply_subgraph_feedback(&[x, y], 12.0);
        let pairs: Vec<_> = dirty.pairs().collect();
        assert_eq!(pairs, vec![(x, y), (y, y)]);
        assert_eq!(pairs.len(), dirty.updated);
        let product = dirty.rows().count() * dirty.cols().count();
        assert!(pairs.len() <= product, "pairs must refine the product");
    }

    #[test]
    fn worklist_exact_matches_full_pass_fixpoint() {
        // Reference: iterate *full* reformulate passes to the fixpoint;
        // reformulate_exact (full round 1 + worklist rounds) must land on a
        // bit-identical matrix with the same round count. The wide diamond
        // makes one sweep insufficient, so the worklist rounds really run.
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let mut layer = vec![a];
        for _ in 0..3 {
            let mut next = Vec::new();
            for &n in &layer {
                next.push(g.unary(OpKind::Not, n).unwrap());
                next.push(g.unary(OpKind::Neg, n).unwrap());
            }
            layer = next;
        }
        let out =
            layer.iter().skip(1).fold(layer[0], |acc, &n| g.binary(OpKind::Xor, acc, n).unwrap());
        g.set_output(out);
        let delays: Vec<f64> = (0..g.len()).map(|i| (i % 5) as f64 * 7.0 + 3.0).collect();
        let base = DelayMatrix::initialize(&g, &delays);
        for (lo, hi, fb) in [(0usize, 6usize, 11.0), (4, 12, 6.0), (2, 9, 4.0)] {
            let members: Vec<NodeId> = (lo..hi.min(g.len())).map(|i| NodeId(i as u32)).collect();
            let mut reference = base.clone();
            reference.apply_subgraph_feedback(&members, fb);
            let mut ref_rounds = 0usize;
            while reference.reformulate(&g) {
                ref_rounds += 1;
            }
            let ref_rounds = ref_rounds.max(1);
            let mut exact = base.clone();
            exact.apply_subgraph_feedback(&members, fb);
            let rounds = exact.reformulate_exact(&g);
            assert_eq!(exact, reference, "fixpoint diverged for feedback {fb}");
            assert_eq!(rounds, ref_rounds, "round count diverged for feedback {fb}");
        }
    }

    #[test]
    fn max_relative_gap_zero_for_identical() {
        let (g, _) = chain();
        let d = DelayMatrix::initialize(&g, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.max_relative_gap(&d.clone()), 0.0);
    }
}
