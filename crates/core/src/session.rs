//! Persistent cross-run scheduling sessions.
//!
//! [`run_isdc`](crate::run_isdc) is one-shot: the structural-fingerprint
//! delay cache and the warm-started LP engine it builds die with the call.
//! An [`IsdcSession`] keeps both alive **across runs** of the same design:
//!
//! - the [`DelayCache`] memoizes downstream oracle evaluations, so a re-run
//!   (or the next point of a clock-period sweep, whose extracted subgraphs
//!   overlap almost completely) evaluates mostly from cache;
//! - the initial LP solve of each run exports its solver potentials, keyed
//!   by the design's structural fingerprint and clock period; later runs
//!   import the nearest stored vector and — when it validates against their
//!   own LP — skip the cold Bellman-Ford start entirely.
//!
//! Both assets are *pure accelerators*: cached reports replay
//! bit-identically and the LP canonicalizes its optimum independent of the
//! solve path, so every session run produces exactly the schedule an
//! independent cold [`run_isdc`](crate::run_isdc) would (guarded by the
//! sweep determinism tests).
//!
//! Sessions persist to disk through the same snapshot file the cache uses
//! ([`IsdcSession::save_snapshot`] / [`IsdcSession::load_snapshot`]):
//! format version 2 stores learned potentials alongside the delay entries,
//! under the same oracle identity tag.
//!
//! # Examples
//!
//! ```
//! use isdc_core::{IsdcConfig, IsdcSession};
//! use isdc_ir::{Graph, OpKind};
//! use isdc_synth::{OpDelayModel, SynthesisOracle};
//! use isdc_techlib::TechLibrary;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = Graph::new("mac");
//! let a = g.param("a", 16);
//! let b = g.param("b", 16);
//! let c = g.param("c", 16);
//! let p = g.binary(OpKind::Mul, a, b)?;
//! let s = g.binary(OpKind::Add, p, c)?;
//! g.set_output(s);
//!
//! let lib = TechLibrary::sky130();
//! let model = OpDelayModel::new(lib.clone());
//! let oracle = SynthesisOracle::new(lib);
//! let mut config = IsdcConfig::paper_defaults(5000.0);
//! config.threads = 1;
//!
//! let mut session = IsdcSession::new(&g, &model, &oracle);
//! let first = session.run(&config)?;
//! let second = session.run(&config)?;
//! assert_eq!(first.result.schedule, second.result.schedule);
//! assert_eq!(second.cache_misses, 0, "a repeat run evaluates purely from cache");
//! # Ok(())
//! # }
//! ```

use crate::driver::{run_pipeline, IsdcConfig, IsdcResult};
use crate::pipeline::RunSeed;
use crate::scheduler::{IncrementalScheduler, ScheduleError};
use isdc_cache::{canonicalize, CachingOracle, DelayCache, Fingerprint};
use isdc_ir::{Graph, NodeId};
use isdc_synth::{DelayOracle, OpDelayModel};
use isdc_techlib::Picos;
use std::path::Path;
use std::sync::Arc;

/// One completed run within a session: the full [`IsdcResult`] plus the
/// session-level warm-start and cache accounting for this run alone.
#[derive(Clone, Debug)]
pub struct SessionRun {
    /// The clock period this run scheduled for.
    pub clock_period_ps: Picos,
    /// Whether the run's *initial* LP solve was warm-started from
    /// potentials learned by an earlier run (always false for the first run
    /// of a fresh, snapshotless session).
    pub warm_start: bool,
    /// Oracle-cache hits recorded during this run.
    pub cache_hits: u64,
    /// Oracle-cache misses recorded during this run.
    pub cache_misses: u64,
    /// The run itself — bit-identical to what an independent cold
    /// [`run_isdc`](crate::run_isdc) at the same config produces.
    pub result: IsdcResult,
}

impl SessionRun {
    /// Cache hits over lookups for this run, or 0.0 without lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Iterations whose LP re-solve was warm-started.
    pub fn warm_solves(&self) -> usize {
        self.result.history.iter().filter(|r| r.solver_warm).count()
    }

    /// Iterations solved cold (including the initial solve unless it
    /// imported potentials).
    pub fn cold_solves(&self) -> usize {
        self.result.history.len() - self.warm_solves()
    }
}

/// A persistent scheduling engine for one design: runs the staged ISDC
/// pipeline any number of times (different clock periods, strategies,
/// iteration budgets) while carrying the learned delay cache and LP
/// potentials across runs. See the [module docs](self) for the guarantees.
pub struct IsdcSession<'a, O: ?Sized> {
    graph: &'a Graph,
    model: &'a OpDelayModel,
    oracle: &'a O,
    cache: Arc<DelayCache>,
    design_key: Fingerprint,
    /// The most recent run's engine as of its *initial* solve (naive-matrix
    /// bounds at that run's period) — the strongest warm-start: the next
    /// run retargets it to its own period instead of rebuilding the LP.
    engine: Option<IncrementalScheduler>,
    runs: usize,
}

impl<'a, O: DelayOracle + ?Sized> IsdcSession<'a, O> {
    /// A session over `graph` with a fresh private cache.
    pub fn new(graph: &'a Graph, model: &'a OpDelayModel, oracle: &'a O) -> Self {
        Self::with_cache(graph, model, oracle, Arc::new(DelayCache::new()))
    }

    /// A session sharing an existing cache (e.g. one loaded from a snapshot
    /// or shared between sessions over structurally-overlapping designs).
    pub fn with_cache(
        graph: &'a Graph,
        model: &'a OpDelayModel,
        oracle: &'a O,
        cache: Arc<DelayCache>,
    ) -> Self {
        let all: Vec<NodeId> = graph.node_ids().collect();
        let design_key = canonicalize(graph, &all).fingerprint;
        Self { graph, model, oracle, cache, design_key, engine: None, runs: 0 }
    }

    /// The session's shared cache handle (delay entries + potentials).
    pub fn cache(&self) -> &Arc<DelayCache> {
        &self.cache
    }

    /// The design's canonical structural fingerprint — the identity under
    /// which this session's potentials are stored.
    pub fn design_key(&self) -> Fingerprint {
        self.design_key
    }

    /// Number of successful [`IsdcSession::run`] calls so far.
    pub fn runs_completed(&self) -> usize {
        self.runs
    }

    /// Merges a persisted snapshot (delay entries and potentials) into the
    /// session, returning the number of delay entries merged. Tagged with
    /// the session oracle's identity, like
    /// [`run_isdc`](crate::run_isdc)'s `cache_file`.
    ///
    /// # Errors
    ///
    /// Returns the I/O or parse failure, including an oracle-tag mismatch.
    pub fn load_snapshot(&self, path: &Path) -> Result<usize, String> {
        self.cache.load(path, self.oracle.name())
    }

    /// Like [`IsdcSession::load_snapshot`], but with the fleet's
    /// degrade-instead-of-error policy: a corrupt snapshot is quarantined
    /// (`<name>.corrupt`) and the session starts cold; see
    /// [`isdc_cache::SnapshotLoad`].
    pub fn load_snapshot_resilient(&self, path: &Path) -> isdc_cache::SnapshotLoad {
        self.cache.load_resilient(path, self.oracle.name())
    }

    /// Persists the session's cache — delay entries *and* learned
    /// potentials — to `path` (current snapshot format, written
    /// crash-safely: temp-then-rename with an integrity footer).
    ///
    /// # Errors
    ///
    /// Returns the I/O failure.
    pub fn save_snapshot(&self, path: &Path) -> Result<(), String> {
        self.cache.save(path, self.oracle.name())
    }

    /// Runs the full ISDC loop at `config`, reusing everything earlier runs
    /// learned. `config.cache` / `config.cache_file` are ignored: a session
    /// always memoizes through its own cache, and persistence goes through
    /// [`IsdcSession::save_snapshot`].
    ///
    /// # Errors
    ///
    /// See [`run_isdc`](crate::run_isdc).
    pub fn run(&mut self, config: &IsdcConfig) -> Result<SessionRun, ScheduleError> {
        // Wraps the pipeline's own "run" span, so the gap between the two
        // is exactly the session's seed/handoff overhead.
        let _span = isdc_telemetry::span_f64("session:run", "clock_ps", config.clock_period_ps);
        let caching = CachingOracle::with_cache(self.oracle, Arc::clone(&self.cache));
        let stats_before = self.cache.stats();
        // Strongest seed first: the previous run's engine, retargeted to
        // this run's period (cloned, so an infeasible probe cannot consume
        // it). Fallback — e.g. a fresh session restored from a snapshot —
        // is the nearest stored potential vector: exact clock first, then
        // the closest shorter period (its optimum satisfies this run's
        // relaxed timing bounds by monotonicity of Eq. 2 in the period),
        // then the closest longer one as a validated long shot.
        let prior = if config.incremental && self.engine.is_none() {
            self.cache.nearest_potentials(self.design_key, config.clock_period_ps)
        } else {
            None
        };
        let seed = RunSeed {
            engine: if config.incremental { self.engine.clone() } else { None },
            potentials: prior.as_ref().map(|(_, pi)| pi.as_slice()),
            export_engine: config.incremental,
        };
        let mut outcome =
            run_pipeline(self.graph, self.model, &caching, config, Some(&self.cache), seed)?;
        if let Some(engine) = outcome.initial_engine.take() {
            self.engine = Some(engine);
        }
        if let Some(pi) = &outcome.initial_potentials {
            self.cache.store_potentials(self.design_key, config.clock_period_ps, pi.clone());
        }
        self.runs += 1;
        let stats_after = self.cache.stats();
        Ok(SessionRun {
            clock_period_ps: config.clock_period_ps,
            warm_start: outcome.initial_warm,
            cache_hits: stats_after.hits - stats_before.hits,
            cache_misses: stats_after.misses - stats_before.misses,
            result: outcome.result,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_isdc;
    use isdc_ir::OpKind;
    use isdc_synth::SynthesisOracle;
    use isdc_techlib::TechLibrary;

    fn datapath() -> Graph {
        let mut g = Graph::new("dp");
        let inputs: Vec<_> = (0..10).map(|i| g.param(format!("p{i}"), 8)).collect();
        let mut acc = g.binary(OpKind::Add, inputs[0], inputs[1]).unwrap();
        for &p in &inputs[2..] {
            acc = g.binary(OpKind::Add, acc, p).unwrap();
        }
        let out = g.binary(OpKind::Xor, acc, inputs[0]).unwrap();
        g.set_output(out);
        g
    }

    fn quick_config(clock: f64) -> IsdcConfig {
        IsdcConfig {
            subgraphs_per_iteration: 8,
            max_iterations: 6,
            threads: 1,
            ..IsdcConfig::paper_defaults(clock)
        }
    }

    #[test]
    fn session_runs_match_independent_cold_runs() {
        let lib = TechLibrary::sky130();
        let model = OpDelayModel::new(lib.clone());
        let oracle = SynthesisOracle::new(lib);
        let g = datapath();
        let mut session = IsdcSession::new(&g, &model, &oracle);
        for clock in [2500.0, 3000.0, 2500.0] {
            let run = session.run(&quick_config(clock)).unwrap();
            let cold = run_isdc(&g, &model, &oracle, &quick_config(clock)).unwrap();
            assert_eq!(run.result.schedule, cold.schedule, "clock {clock}");
            assert_eq!(
                run.result.history.iter().map(|r| r.register_bits).collect::<Vec<_>>(),
                cold.history.iter().map(|r| r.register_bits).collect::<Vec<_>>(),
                "clock {clock}"
            );
        }
        assert_eq!(session.runs_completed(), 3);
    }

    #[test]
    fn repeat_run_is_fully_cached_and_warm_started() {
        let lib = TechLibrary::sky130();
        let model = OpDelayModel::new(lib.clone());
        let oracle = SynthesisOracle::new(lib);
        let g = datapath();
        let mut session = IsdcSession::new(&g, &model, &oracle);
        let first = session.run(&quick_config(2500.0)).unwrap();
        assert!(!first.warm_start, "nothing to import on a fresh session");
        assert!(first.cache_hits + first.cache_misses > 0);
        let second = session.run(&quick_config(2500.0)).unwrap();
        assert!(second.warm_start, "same-clock re-run must import its own potentials");
        assert!(second.result.history[0].solver_warm, "the initial solve itself goes warm");
        assert_eq!(second.cache_misses, 0, "every evaluation must replay from cache");
        assert!(second.cache_hit_rate() == 1.0);
        assert_eq!(second.warm_solves(), second.result.history.len());
        assert_eq!(first.result.schedule, second.result.schedule);
    }

    #[test]
    fn ascending_clocks_warm_start_from_the_tighter_run() {
        let lib = TechLibrary::sky130();
        let model = OpDelayModel::new(lib.clone());
        let oracle = SynthesisOracle::new(lib);
        let g = datapath();
        let mut session = IsdcSession::new(&g, &model, &oracle);
        session.run(&quick_config(2500.0)).unwrap();
        let looser = session.run(&quick_config(3200.0)).unwrap();
        assert!(looser.warm_start, "a tighter clock's optimum must validate at a looser clock");
    }
}
