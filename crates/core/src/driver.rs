//! The ISDC iteration driver (paper Fig. 2 and §III-A).
//!
//! Ties everything together by composing the staged pipeline
//! ([`crate::pipeline`]): the initial SDC solve, then `Extract -> Dedupe ->
//! Evaluate -> Feedback -> Reformulate -> Solve` per iteration until
//! register usage stabilizes. [`run_isdc`] is the one-shot entry point; the
//! cross-run entry point is [`IsdcSession`](crate::IsdcSession), which
//! drives the same pipeline but keeps the delay cache and LP potentials
//! alive between runs.

use crate::delay::DelayMatrix;
use crate::metrics;
use crate::pipeline::{
    run_stage, Dedupe, Evaluate, Extract, Feedback, PipelineState, Reformulate, RunSeed, Solve,
    StageKind, StageProfile,
};
use crate::schedule::Schedule;
use crate::scheduler::IncrementalScheduler;
use crate::scheduler::{schedule_with_matrix, ScheduleError};
use crate::subgraph::{ExtractionConfig, ScoringStrategy, ShapeStrategy};
use isdc_cache::{CacheStats, CachingOracle, DelayCache};
use isdc_ir::Graph;
use isdc_sdc::DrainStats;
use isdc_synth::{DelayOracle, OpDelayModel};
use isdc_techlib::Picos;
use isdc_telemetry::{MetricValue, MetricsFrame};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration for an ISDC run.
#[derive(Clone, Debug, PartialEq)]
pub struct IsdcConfig {
    /// Target clock period in picoseconds.
    pub clock_period_ps: Picos,
    /// Subgraphs extracted and evaluated per iteration (the paper's `m`;
    /// their main evaluation uses 16).
    pub subgraphs_per_iteration: usize,
    /// Upper bound on feedback iterations (the paper uses 15 in Table I and
    /// 30 in the ablations).
    pub max_iterations: usize,
    /// Path ranking strategy.
    pub scoring: ScoringStrategy,
    /// Path expansion strategy.
    pub shape: ShapeStrategy,
    /// Worker threads for subgraph evaluation.
    pub threads: usize,
    /// Stop after this many consecutive iterations without a register-usage
    /// change ("until a stable scheduling result is achieved").
    pub convergence_patience: usize,
    /// Memoize downstream evaluations by structural fingerprint
    /// ([`isdc_cache::CachingOracle`]). Extracted subgraphs overlap heavily
    /// across iterations, so most lookups hit after the first iteration.
    pub cache: bool,
    /// Optional cache snapshot path: loaded (best-effort) before the run
    /// and saved after it, so delay data survives across runs and sweeps.
    /// Ignored unless [`IsdcConfig::cache`] is set.
    pub cache_file: Option<PathBuf>,
    /// Entry-capacity bound for the delay cache this run creates when
    /// [`IsdcConfig::cache`] is set (segmented-LRU eviction — see
    /// [`isdc_cache::DelayCache::with_capacity`]). `0` = unbounded.
    /// Ignored when the caller supplies its own cache (sessions, batch).
    pub cache_capacity: usize,
    /// Solve each iteration's LP incrementally ([`IncrementalScheduler`]):
    /// the difference system persists across iterations, only dirty timing
    /// pairs are re-emitted, and the min-cost-flow re-solve is warm-started
    /// from the previous optimum (sound because Alg. 1 only ever relaxes
    /// bounds). Schedules are bit-identical either way; this knob only
    /// trades solver time, so it defaults to on.
    pub incremental: bool,
    /// Compute the per-iteration **oracle quality metrics**
    /// ([`IterationRecord::estimation_error_pct`] and its naive twin),
    /// which time every pipeline stage through the downstream oracle after
    /// each iteration. Defaults to on;
    /// [`sweep_clock_period`](crate::sweep_clock_period) turns it off for
    /// non-final sweep points,
    /// where the records are never read — schedules, register bits and
    /// convergence are unaffected either way (the metrics are purely
    /// observational), only the error columns read 0.
    ///
    /// **Not to be confused with telemetry.** This flag gates the paper's
    /// Fig. 7 estimation-error measurement (extra oracle work per
    /// iteration); it has nothing to do with the `isdc-telemetry` span /
    /// metrics-registry layer, which is controlled globally by
    /// [`isdc_telemetry::set_enabled`] (CLI: `--trace`) and records
    /// every iteration — including ones whose quality metrics this flag
    /// skips. With metrics off the `oracle_metrics` span simply never
    /// opens inside the `iteration` span.
    pub iteration_metrics: bool,
}

impl IsdcConfig {
    /// The paper's main-evaluation settings: fanout-driven windows, 16
    /// subgraphs per iteration, at most 15 iterations, no memoization.
    pub fn paper_defaults(clock_period_ps: Picos) -> Self {
        Self {
            clock_period_ps,
            subgraphs_per_iteration: 16,
            max_iterations: 15,
            scoring: ScoringStrategy::FanoutDriven,
            shape: ShapeStrategy::Window,
            threads: 4,
            convergence_patience: 2,
            cache: false,
            cache_file: None,
            cache_capacity: 0,
            incremental: true,
            iteration_metrics: true,
        }
    }

    /// Enables oracle memoization, optionally persisted at `file`.
    pub fn with_cache(mut self, file: Option<PathBuf>) -> Self {
        self.cache = true;
        self.cache_file = file;
        self
    }

    pub(crate) fn extraction(&self) -> ExtractionConfig {
        ExtractionConfig {
            scoring: self.scoring,
            shape: self.shape,
            max_subgraphs: self.subgraphs_per_iteration,
            clock_period_ps: self.clock_period_ps,
        }
    }
}

/// Per-iteration quality snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct IterationRecord {
    /// Iteration index; 0 is the initial (pure SDC) schedule.
    pub iteration: usize,
    /// Total pipeline register bits after this iteration's schedule.
    pub register_bits: u64,
    /// Pipeline depth.
    pub num_stages: u32,
    /// Mean relative delay-estimation error vs. the downstream oracle, in
    /// percent (Fig. 7's metric).
    pub estimation_error_pct: f64,
    /// The same error computed with the *naive* (never-updated) delay matrix
    /// — what the original SDC scheduler would believe about this schedule.
    /// Fig. 7 contrasts the two trajectories.
    pub naive_estimation_error_pct: f64,
    /// Subgraphs evaluated in this iteration (0 for the initial schedule).
    pub subgraphs_evaluated: usize,
    /// Oracle-cache hits recorded during this iteration (0 with caching
    /// off). Counts every memoized lookup, including the metric snapshots.
    pub cache_hits: u64,
    /// Oracle-cache misses recorded during this iteration (0 with caching
    /// off).
    pub cache_misses: u64,
    /// Wall-clock time spent building/updating and solving this iteration's
    /// LP (a subset of [`IterationRecord::elapsed`]). The cold-vs-warm gap
    /// here is what [`IsdcConfig::incremental`] buys.
    pub solver_time: Duration,
    /// Whether this iteration's LP re-solve was warm-started (always false
    /// with [`IsdcConfig::incremental`] off, for the initial schedule, and
    /// after any cold fallback).
    pub solver_warm: bool,
    /// SSP drain counters of this iteration's LP solve: Dijkstra passes,
    /// nodes settled, augmenting paths, flow pushed. The batched
    /// multi-source drain keeps `dijkstras` at or below `paths`; all zero
    /// with [`IsdcConfig::incremental`] off (the one-shot solver's
    /// counters are not retrievable) and for cached zero-delta re-solves.
    pub drain: DrainStats,
    /// Wall-clock time spent in this iteration.
    pub elapsed: Duration,
}

impl IterationRecord {
    /// Cache hits over lookups for this iteration, or 0.0 without lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// The outcome of an ISDC run.
#[derive(Clone, Debug)]
pub struct IsdcResult {
    /// The final (best) schedule.
    pub schedule: Schedule,
    /// The feedback-updated delay matrix at termination.
    pub delays: DelayMatrix,
    /// One record per iteration, starting with the initial SDC schedule.
    pub history: Vec<IterationRecord>,
    /// Final oracle-cache counters, when caching was enabled.
    pub cache_stats: Option<CacheStats>,
    /// Accumulated wall-clock cost of each pipeline stage across the run,
    /// in [`StageKind::ALL`] order — a view over [`IsdcResult::metrics`]
    /// (`stage/{name}/ns`, `stage/{name}/calls`).
    pub stage_profile: Vec<(StageKind, StageProfile)>,
    /// Every metric the run recorded, as one mergeable telemetry frame:
    /// per-stage wall-clock (`stage/*`), solver drain totals (`drain/*`),
    /// iteration/subgraph counts (`run/*`), the LP solve-time histogram
    /// (`solve/ns`) and — when caching was on — this run's share of cache
    /// traffic (`cache/*`). [`IsdcResult::stage_profile`],
    /// [`IsdcResult::drain_totals`] and [`IsdcResult::cache_stats`] are
    /// views/summaries of the same underlying cells.
    pub metrics: MetricsFrame,
    /// Total wall-clock scheduling time.
    pub total_time: Duration,
}

impl IsdcResult {
    /// The last iteration's record.
    ///
    /// # Panics
    ///
    /// Never panics: a successful run records at least the initial schedule.
    pub fn final_record(&self) -> &IterationRecord {
        self.history.last().expect("history is never empty")
    }

    /// Number of feedback iterations executed (excluding the initial
    /// schedule).
    pub fn iterations(&self) -> usize {
        self.history.len().saturating_sub(1)
    }

    /// Accumulated SSP drain counters across every iteration's LP solve —
    /// the run-level view of how much search the solver did (pairs with
    /// the `solve` row of [`IsdcResult::stage_profile`], which holds the
    /// wall-clock side).
    pub fn drain_totals(&self) -> DrainStats {
        let mut total = DrainStats::default();
        for rec in &self.history {
            total += rec.drain;
        }
        total
    }
}

/// Runs plain (baseline) SDC scheduling: one LP solve on the naive delay
/// matrix. Returns the schedule and the matrix for further analysis.
///
/// # Errors
///
/// See [`ScheduleError`].
pub fn run_sdc(
    graph: &Graph,
    model: &OpDelayModel,
    clock_period_ps: Picos,
) -> Result<(Schedule, DelayMatrix), ScheduleError> {
    let delays = DelayMatrix::initialize(graph, &model.all_node_delays(graph));
    let schedule = schedule_with_matrix(graph, &delays, clock_period_ps)?;
    Ok((schedule, delays))
}

/// Runs the full ISDC loop.
///
/// `model` provides the naive per-op delays (the initial matrix); `oracle`
/// is the downstream tool that times extracted subgraphs.
///
/// # Errors
///
/// See [`ScheduleError`]. Feasibility can only improve across iterations
/// (delay updates are monotonically non-increasing, so timing constraints
/// only relax), hence errors after the first solve indicate misuse.
///
/// # Examples
///
/// ```
/// use isdc_core::{run_isdc, IsdcConfig};
/// use isdc_ir::{Graph, OpKind};
/// use isdc_synth::{OpDelayModel, SynthesisOracle};
/// use isdc_techlib::TechLibrary;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = Graph::new("mac");
/// let a = g.param("a", 16);
/// let b = g.param("b", 16);
/// let c = g.param("c", 16);
/// let p = g.binary(OpKind::Mul, a, b)?;
/// let s = g.binary(OpKind::Add, p, c)?;
/// g.set_output(s);
///
/// let lib = TechLibrary::sky130();
/// let model = OpDelayModel::new(lib.clone());
/// let oracle = SynthesisOracle::new(lib);
/// let mut config = IsdcConfig::paper_defaults(5000.0);
/// config.threads = 1;
/// let result = run_isdc(&g, &model, &oracle, &config)?;
/// assert!(result.final_record().register_bits <= result.history[0].register_bits);
/// # Ok(())
/// # }
/// ```
pub fn run_isdc<O: DelayOracle + ?Sized>(
    graph: &Graph,
    model: &OpDelayModel,
    oracle: &O,
    config: &IsdcConfig,
) -> Result<IsdcResult, ScheduleError> {
    if !config.cache {
        return run_pipeline(graph, model, oracle, config, None, RunSeed::default())
            .map(|o| o.result);
    }
    let cache = Arc::new(DelayCache::with_capacity(config.cache_capacity));
    if let Some(path) = &config.cache_file {
        // Best-effort: a missing, stale or foreign-oracle snapshot only
        // costs misses. The oracle tag check inside `load` prevents
        // replaying delays that a *different* downstream flow measured.
        let _ = cache.load(path, oracle.name());
    }
    let caching = CachingOracle::with_cache(oracle, Arc::clone(&cache));
    let result = run_pipeline(graph, model, &caching, config, Some(&cache), RunSeed::default())
        .map(|o| o.result);
    if result.is_ok() {
        if let Some(path) = &config.cache_file {
            let _ = cache.save(path, oracle.name());
        }
    }
    result
}

/// A completed run plus the cross-run assets [`crate::IsdcSession`] keeps.
pub(crate) struct PipelineOutcome {
    pub(crate) result: IsdcResult,
    /// LP potentials exported after the initial (naive-matrix) solve; a
    /// later run of the same design imports them to skip its cold start.
    pub(crate) initial_potentials: Option<Vec<i64>>,
    /// The engine cloned after the initial solve, when the seed asked for
    /// it — next run's retarget material.
    pub(crate) initial_engine: Option<IncrementalScheduler>,
    /// Whether the initial solve itself was warm-started (only possible
    /// with a seeded engine or imported potentials).
    pub(crate) initial_warm: bool,
}

/// The full ISDC loop over the staged pipeline. `cache` (when present) is
/// only read for per-iteration hit/miss accounting — lookups themselves go
/// through `oracle`, which the caller has already wrapped if it wants
/// memoization. `seed` warm-starts the initial LP solve.
pub(crate) fn run_pipeline<O: DelayOracle + ?Sized>(
    graph: &Graph,
    model: &OpDelayModel,
    oracle: &O,
    config: &IsdcConfig,
    cache: Option<&DelayCache>,
    seed: RunSeed<'_>,
) -> Result<PipelineOutcome, ScheduleError> {
    let _run_span = isdc_telemetry::span_f64("run", "clock_ps", config.clock_period_ps);
    let start = Instant::now();
    let stats_now = || cache.map(|c| c.stats()).unwrap_or_default();
    let run_stats_start = stats_now();
    let mut stats_before = run_stats_start;
    let mut state = PipelineState::new(graph, model, oracle, config, seed)?;
    // The never-updated matrix is only consumed by the oracle metrics;
    // skip the O(pairs) copy when those are off.
    let naive = config.iteration_metrics.then(|| state.delays().clone());
    let initial_potentials = state.initial_potentials().map(<[i64]>::to_vec);
    let initial_engine = state.take_initial_engine();
    let initial_warm = state.solver_warm();
    let mut history = vec![snapshot(
        graph,
        state.schedule(),
        state.delays(),
        naive.as_ref(),
        oracle,
        SolveInfo {
            iteration: 0,
            subgraphs_evaluated: 0,
            solver_time: state.initial_solve_time(),
            solver_warm: initial_warm,
            drain: state.solver_drain(),
            metrics: config.iteration_metrics,
        },
        &mut stats_before,
        &stats_now,
        start.elapsed(),
    )];

    let mut stable_for = 0usize;
    let mut prev_bits = state.schedule().register_bits(graph);
    for iteration in 1..=config.max_iterations {
        // Per-iteration cancellation poll (one relaxed load disarmed) and
        // the matching chaos hook. Completed iterations stay in `history`;
        // the caller's error path discards only the in-flight run.
        isdc_cancel::checkpoint().map_err(|_| ScheduleError::DeadlineExceeded)?;
        isdc_faults::trip("pipeline/iteration")
            .map_err(|fault| ScheduleError::Injected { site: fault.site })?;
        // Opened unconditionally: iterations whose *quality metrics* are
        // skipped (`iteration_metrics: false`) still get full span
        // coverage — only the oracle_metrics child span is absent.
        let _iter_span = isdc_telemetry::span_u64("iteration", "i", iteration as u64);
        let iter_start = Instant::now();
        let (subgraphs, _) = run_stage(&mut Extract, &mut state, ())?;
        if subgraphs.is_empty() {
            break; // nothing left to refine (e.g. single-stage pipeline)
        }
        let (subgraphs, _) = run_stage(&mut Dedupe, &mut state, subgraphs)?;
        let (evaluated, _) = run_stage(&mut Evaluate, &mut state, subgraphs)?;
        let subgraphs_evaluated = evaluated.0.len();
        let (dirty, _) = run_stage(&mut Feedback, &mut state, evaluated)?;
        let (dirty, reformulate_time) = run_stage(&mut Reformulate, &mut state, dirty)?;
        let (solver_warm, solve_time) = run_stage(&mut Solve, &mut state, dirty)?;

        let next_bits = state.schedule().register_bits(graph);
        state.metrics().iterations.incr();
        history.push(snapshot(
            graph,
            state.schedule(),
            state.delays(),
            naive.as_ref(),
            oracle,
            SolveInfo {
                iteration,
                subgraphs_evaluated,
                // Matrix maintenance + LP re-solve, mirroring what the
                // pre-pipeline driver timed under this name.
                solver_time: reformulate_time + solve_time,
                solver_warm,
                drain: state.solver_drain(),
                metrics: config.iteration_metrics,
            },
            &mut stats_before,
            &stats_now,
            iter_start.elapsed(),
        ));
        if next_bits == prev_bits {
            stable_for += 1;
            if stable_for >= config.convergence_patience {
                break;
            }
        } else {
            stable_for = 0;
        }
        prev_bits = next_bits;
    }

    let stage_profile = state.profile();
    let mut metrics_frame = state.metrics_frame();
    if cache.is_some() {
        // This run's share of the (possibly shared) cache's traffic, as
        // registry-shaped counters alongside the pipeline's own.
        let final_stats = stats_now();
        metrics_frame
            .insert("cache/hits", MetricValue::Counter(final_stats.hits - run_stats_start.hits));
        metrics_frame.insert(
            "cache/misses",
            MetricValue::Counter(final_stats.misses - run_stats_start.misses),
        );
        metrics_frame.insert(
            "cache/inserts",
            MetricValue::Counter(final_stats.inserts - run_stats_start.inserts),
        );
    }
    let total_time = start.elapsed();
    // Run reports use this as the wall-clock denominator (stage times
    // exclude snapshotting and convergence bookkeeping).
    metrics_frame.insert("run/total_ns", MetricValue::Counter(total_time.as_nanos() as u64));
    Ok(PipelineOutcome {
        result: IsdcResult {
            schedule: state.schedule().clone(),
            delays: state.delays().clone(),
            history,
            cache_stats: cache.map(|c| c.stats()),
            stage_profile,
            metrics: metrics_frame,
            total_time,
        },
        initial_potentials,
        initial_engine,
        initial_warm,
    })
}

/// Per-iteration solver facts threaded into [`snapshot`].
struct SolveInfo {
    iteration: usize,
    subgraphs_evaluated: usize,
    solver_time: Duration,
    solver_warm: bool,
    drain: DrainStats,
    /// [`IsdcConfig::iteration_metrics`]: whether to pay for the oracle
    /// quality metrics on this record.
    metrics: bool,
}

#[allow(clippy::too_many_arguments)]
fn snapshot<O: DelayOracle + ?Sized>(
    graph: &Graph,
    schedule: &Schedule,
    delays: &DelayMatrix,
    naive: Option<&DelayMatrix>,
    oracle: &O,
    solve: SolveInfo,
    stats_before: &mut CacheStats,
    stats_now: &dyn Fn() -> CacheStats,
    elapsed: Duration,
) -> IterationRecord {
    let (error_pct, naive_error_pct) = if solve.metrics {
        let _span = isdc_telemetry::span("oracle_metrics");
        let sta = metrics::stage_sta_delays(graph, schedule, oracle);
        let est = metrics::estimated_stage_delays(graph, schedule, delays);
        let naive = naive.expect("naive matrix retained while metrics are on");
        let naive_est = metrics::estimated_stage_delays(graph, schedule, naive);
        (metrics::estimation_error_pct(&est, &sta), metrics::estimation_error_pct(&naive_est, &sta))
    } else {
        // Metrics skipped (e.g. a sweep's inner points): the oracle is not
        // consulted at all, which is the whole saving.
        (0.0, 0.0)
    };
    let stats_after = stats_now();
    let record = IterationRecord {
        iteration: solve.iteration,
        register_bits: schedule.register_bits(graph),
        num_stages: schedule.num_stages(),
        estimation_error_pct: error_pct,
        naive_estimation_error_pct: naive_error_pct,
        subgraphs_evaluated: solve.subgraphs_evaluated,
        cache_hits: stats_after.hits - stats_before.hits,
        cache_misses: stats_after.misses - stats_before.misses,
        solver_time: solve.solver_time,
        solver_warm: solve.solver_warm,
        drain: solve.drain,
        elapsed,
    };
    *stats_before = stats_after;
    record
}

#[cfg(test)]
mod tests {
    use super::*;
    use isdc_ir::OpKind;
    use isdc_synth::{NaiveSumOracle, SynthesisOracle};
    use isdc_techlib::TechLibrary;

    /// A datapath with enough chained arithmetic that naive estimates force
    /// splits which feedback can undo.
    fn datapath() -> Graph {
        // Summing per-op adder delays wildly overestimates a fused
        // carry-lookahead chain, so feedback has real slack to harvest.
        let mut g = Graph::new("dp");
        let inputs: Vec<_> = (0..10).map(|i| g.param(format!("p{i}"), 8)).collect();
        let mut acc = g.binary(OpKind::Add, inputs[0], inputs[1]).unwrap();
        for &p in &inputs[2..] {
            acc = g.binary(OpKind::Add, acc, p).unwrap();
        }
        let out = g.binary(OpKind::Xor, acc, inputs[0]).unwrap();
        g.set_output(out);
        g
    }

    fn quick_config(clock: f64) -> IsdcConfig {
        IsdcConfig {
            subgraphs_per_iteration: 8,
            max_iterations: 8,
            threads: 1,
            ..IsdcConfig::paper_defaults(clock)
        }
    }

    #[test]
    fn isdc_never_worse_than_sdc() {
        let lib = TechLibrary::sky130();
        let model = OpDelayModel::new(lib.clone());
        let oracle = SynthesisOracle::new(lib);
        let g = datapath();
        let (baseline, _) = run_sdc(&g, &model, 2500.0).unwrap();
        let result = run_isdc(&g, &model, &oracle, &quick_config(2500.0)).unwrap();
        assert_eq!(result.history[0].register_bits, baseline.register_bits(&g));
        assert!(
            result.final_record().register_bits <= result.history[0].register_bits,
            "feedback must not increase register usage"
        );
        assert_eq!(result.schedule.first_dependency_violation(&g), None);
    }

    #[test]
    fn isdc_reduces_registers_on_chained_arithmetic() {
        let lib = TechLibrary::sky130();
        let model = OpDelayModel::new(lib.clone());
        let oracle = SynthesisOracle::new(lib);
        let g = datapath();
        let result = run_isdc(&g, &model, &oracle, &quick_config(2500.0)).unwrap();
        assert!(
            result.final_record().register_bits < result.history[0].register_bits,
            "history: {:?}",
            result.history.iter().map(|r| r.register_bits).collect::<Vec<_>>()
        );
    }

    #[test]
    fn no_gain_oracle_changes_nothing() {
        let lib = TechLibrary::sky130();
        let model = OpDelayModel::new(lib.clone());
        let oracle = NaiveSumOracle::new(OpDelayModel::new(lib));
        let g = datapath();
        let result = run_isdc(&g, &model, &oracle, &quick_config(2500.0)).unwrap();
        let first = result.history[0].register_bits;
        for rec in &result.history {
            assert_eq!(rec.register_bits, first, "naive feedback must be a no-op");
        }
        // And it must converge early rather than burn all iterations.
        assert!(result.iterations() < quick_config(2500.0).max_iterations);
    }

    #[test]
    fn single_stage_converges_immediately() {
        let lib = TechLibrary::sky130();
        let model = OpDelayModel::new(lib.clone());
        let oracle = SynthesisOracle::new(lib);
        let mut g = Graph::new("tiny");
        let a = g.param("a", 8);
        let b = g.param("b", 8);
        let x = g.binary(OpKind::Xor, a, b).unwrap();
        g.set_output(x);
        let result = run_isdc(&g, &model, &oracle, &quick_config(2500.0)).unwrap();
        assert_eq!(result.schedule.num_stages(), 1);
        assert_eq!(result.iterations(), 0);
    }

    #[test]
    fn history_is_monotone_nonincreasing_for_synthesis_oracle() {
        let lib = TechLibrary::sky130();
        let model = OpDelayModel::new(lib.clone());
        let oracle = SynthesisOracle::new(lib);
        let g = datapath();
        let result = run_isdc(&g, &model, &oracle, &quick_config(2500.0)).unwrap();
        for w in result.history.windows(2) {
            assert!(
                w[1].register_bits <= w[0].register_bits,
                "register usage regressed: {:?}",
                result.history.iter().map(|r| r.register_bits).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn cached_run_matches_uncached() {
        let lib = TechLibrary::sky130();
        let model = OpDelayModel::new(lib.clone());
        let oracle = SynthesisOracle::new(lib);
        let g = datapath();
        let plain = run_isdc(&g, &model, &oracle, &quick_config(2500.0)).unwrap();
        let cached_config = quick_config(2500.0).with_cache(None);
        let cached = run_isdc(&g, &model, &oracle, &cached_config).unwrap();
        assert_eq!(cached.schedule, plain.schedule, "memoization must not change results");
        assert_eq!(
            cached.history.iter().map(|r| r.register_bits).collect::<Vec<_>>(),
            plain.history.iter().map(|r| r.register_bits).collect::<Vec<_>>(),
        );
        let stats = cached.cache_stats.expect("stats recorded when caching");
        assert!(stats.hits > 0, "iterations repeat subgraphs, so hits must occur: {stats:?}");
        assert!(plain.cache_stats.is_none());
        let total_hits: u64 = cached.history.iter().map(|r| r.cache_hits).sum();
        let total_misses: u64 = cached.history.iter().map(|r| r.cache_misses).sum();
        assert_eq!(total_hits, stats.hits, "per-iteration hits must sum to the total");
        assert_eq!(total_misses, stats.misses);
        assert!(cached.history.last().unwrap().cache_hit_rate() > 0.0);
    }

    #[test]
    fn incremental_run_is_bit_identical_to_from_scratch() {
        let lib = TechLibrary::sky130();
        let model = OpDelayModel::new(lib.clone());
        let oracle = SynthesisOracle::new(lib);
        let g = datapath();
        let incremental = run_isdc(&g, &model, &oracle, &quick_config(2500.0)).unwrap();
        let cold_config = IsdcConfig { incremental: false, ..quick_config(2500.0) };
        let from_scratch = run_isdc(&g, &model, &oracle, &cold_config).unwrap();
        assert_eq!(
            incremental.schedule, from_scratch.schedule,
            "incremental solving must not change results"
        );
        assert_eq!(incremental.history.len(), from_scratch.history.len());
        for (a, b) in incremental.history.iter().zip(&from_scratch.history) {
            assert_eq!(a.register_bits, b.register_bits, "iteration {}", a.iteration);
            assert_eq!(a.num_stages, b.num_stages, "iteration {}", a.iteration);
        }
        // The whole point: feedback iterations re-solve warm.
        assert!(!incremental.history[0].solver_warm, "initial solve is cold");
        assert!(
            incremental.history[1..].iter().all(|r| r.solver_warm),
            "feedback iterations must warm-start: {:?}",
            incremental.history.iter().map(|r| r.solver_warm).collect::<Vec<_>>()
        );
        assert!(from_scratch.history.iter().all(|r| !r.solver_warm));
    }

    #[test]
    fn estimation_error_shrinks_with_feedback() {
        let lib = TechLibrary::sky130();
        let model = OpDelayModel::new(lib.clone());
        let oracle = SynthesisOracle::new(lib);
        let g = datapath();
        let result = run_isdc(&g, &model, &oracle, &quick_config(2500.0)).unwrap();
        let first = result.history[0].estimation_error_pct;
        let last = result.final_record().estimation_error_pct;
        assert!(last <= first + 1e-9, "error should not grow: {first:.2}% -> {last:.2}%");
    }
}
