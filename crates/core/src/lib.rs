//! # isdc-core — feedback-guided iterative SDC scheduling
//!
//! The paper's primary contribution: an iterative HLS scheduling loop that
//! refines a system-of-difference-constraints (SDC) schedule with low-level
//! feedback from downstream tools, reducing pipeline register usage.
//!
//! The pieces map one-to-one onto the paper:
//!
//! | Paper | Here |
//! |---|---|
//! | §II SDC formulation, Eq. 2 | [`schedule_with_matrix`] |
//! | §III-B subgraph extraction (Fig. 3, Fig. 4) | [`extract_subgraphs`], [`ScoringStrategy`], [`ShapeStrategy`] |
//! | §III-C Alg. 1 delay updating | [`DelayMatrix::apply_subgraph_feedback`] |
//! | §III-D Alg. 2 SDC reformulation | [`DelayMatrix::reformulate`] (+ [`DelayMatrix::reformulate_exact`]) |
//! | §III-A overall flow (Fig. 2) | [`run_isdc`], [`IsdcConfig`] |
//! | Table I metrics | [`Schedule::register_bits`], [`metrics`] |
//!
//! On top of the paper, the crate exploits Alg. 1's monotonicity for speed:
//! feedback and reformulation report their writes as a [`DirtySet`] (exact
//! pairs), Alg. 2 runs as a worklist sweep over just the dirty region
//! ([`DelayMatrix::reformulate_incremental`]), and the SDC LP persists
//! across iterations in an [`IncrementalScheduler`] that re-emits only
//! changed timing bounds and re-solves warm
//! ([`isdc_sdc::IncrementalSolver`]). Results are bit-identical to the
//! from-scratch pipeline; only solver time changes
//! ([`IsdcConfig::incremental`]).
//!
//! The loop itself is a staged pipeline ([`pipeline`]: `Extract -> Dedupe
//! -> Evaluate -> Feedback -> Reformulate -> Solve`), and both persistent
//! assets cross *run* boundaries through [`IsdcSession`]: re-runs and
//! clock-period sweeps ([`sweep_clock_period`], [`min_feasible_period`])
//! reuse learned delays and LP state while staying bit-identical to
//! independent cold runs.
//!
//! # Examples
//!
//! ```
//! use isdc_core::{run_isdc, run_sdc, IsdcConfig};
//! use isdc_ir::{Graph, OpKind};
//! use isdc_synth::{OpDelayModel, SynthesisOracle};
//! use isdc_techlib::TechLibrary;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small multiply-accumulate datapath.
//! let mut g = Graph::new("mac");
//! let a = g.param("a", 16);
//! let b = g.param("b", 16);
//! let c = g.param("c", 16);
//! let p = g.binary(OpKind::Mul, a, b)?;
//! let s = g.binary(OpKind::Add, p, c)?;
//! g.set_output(s);
//!
//! let lib = TechLibrary::sky130();
//! let model = OpDelayModel::new(lib.clone());
//! let oracle = SynthesisOracle::new(lib);
//!
//! let (baseline, _) = run_sdc(&g, &model, 5000.0)?;
//! let mut config = IsdcConfig::paper_defaults(5000.0);
//! config.threads = 1;
//! let refined = run_isdc(&g, &model, &oracle, &config)?;
//! assert!(refined.schedule.register_bits(&g) <= baseline.register_bits(&g));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod delay;
mod driver;
pub mod metrics;
pub mod pipeline;
mod schedule;
mod scheduler;
mod session;
mod subgraph;
mod sweep;

pub use delay::{DelayMatrix, DirtySet};
pub use driver::{run_isdc, run_sdc, IsdcConfig, IsdcResult, IterationRecord};
pub use isdc_cache::{CacheStats, CachingOracle, DelayCache};
pub use isdc_sdc::DrainStats;
pub use pipeline::{PipelineState, RunSeed, Stage, StageKind, StageProfile};
pub use schedule::Schedule;
pub use scheduler::{
    schedule_with_matrix, schedule_with_matrix_dense, schedule_with_options, IncrementalScheduler,
    ScheduleError, ScheduleOptions, SparsifyStats,
};
pub use session::{IsdcSession, SessionRun};
pub use subgraph::{
    cone_of, extract_subgraphs, window_of, ExtractionConfig, ScoringStrategy, ShapeStrategy,
    Subgraph,
};
pub use sweep::{
    linear_grid, min_feasible_period, render_sweep_json, sweep_clock_period,
    sweep_clock_period_cold, sweep_clock_period_independent, MinPeriodSearch, SweepPoint,
};
