//! Pipeline schedules and their cost metrics.
//!
//! A [`Schedule`] assigns every IR node a clock cycle (pipeline stage). The
//! register metric follows the paper's accounting (Eq. 3 weighs registers by
//! `bit_count`): a value produced in stage `i` whose last consumer sits in
//! stage `j` occupies `width * (j - i)` register bits — one `width`-bit
//! register per crossed stage boundary. Graph outputs are carried to the
//! final stage, and parameters enter at stage 0.

use isdc_ir::{Graph, NodeId};

/// A pipeline schedule: one stage index per node.
///
/// # Examples
///
/// ```
/// use isdc_ir::{Graph, OpKind};
/// use isdc_core::Schedule;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = Graph::new("t");
/// let a = g.param("a", 8);
/// let b = g.param("b", 8);
/// let x = g.binary(OpKind::Add, a, b)?;
/// let y = g.binary(OpKind::Mul, x, x)?;
/// g.set_output(y);
///
/// // a, b, x in stage 0; y in stage 1.
/// let s = Schedule::new(vec![0, 0, 0, 1]);
/// assert_eq!(s.num_stages(), 2);
/// // x (8 bits) crosses one boundary; y is produced in the last stage.
/// assert_eq!(s.register_bits(&g), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    cycles: Vec<u32>,
}

impl Schedule {
    /// Wraps per-node stage indices (indexed by node id).
    pub fn new(cycles: Vec<u32>) -> Self {
        Self { cycles }
    }

    /// The stage of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cycle(&self, id: NodeId) -> u32 {
        self.cycles[id.index()]
    }

    /// All stage indices, indexed by node id.
    pub fn cycles(&self) -> &[u32] {
        &self.cycles
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// True if the schedule covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Number of pipeline stages (`max cycle + 1`).
    pub fn num_stages(&self) -> u32 {
        self.cycles.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Node ids scheduled in `stage`, ascending.
    pub fn stage_members(&self, stage: u32) -> Vec<NodeId> {
        self.cycles
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == stage)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// The stage of the last consumer of `id` (graph outputs live to the
    /// final stage; unused non-output values die in their own stage).
    pub fn last_use_cycle(&self, graph: &Graph, id: NodeId) -> u32 {
        let own = self.cycle(id);
        let mut last = own;
        for &u in graph.users(id) {
            last = last.max(self.cycle(u));
        }
        if graph.outputs().contains(&id) {
            last = last.max(self.num_stages().saturating_sub(1));
        }
        last
    }

    /// Total pipeline register bits — the paper's "Register Num." metric.
    ///
    /// # Panics
    ///
    /// Panics if the schedule does not cover every node of `graph`.
    pub fn register_bits(&self, graph: &Graph) -> u64 {
        assert_eq!(self.cycles.len(), graph.len(), "schedule does not match graph");
        let mut bits = 0u64;
        for (id, node) in graph.iter() {
            let span = self.last_use_cycle(graph, id) - self.cycle(id);
            bits += node.width as u64 * span as u64;
        }
        bits
    }

    /// Checks that every operand is scheduled no later than its user.
    /// Returns the first violating `(operand, user)` pair, if any.
    pub fn first_dependency_violation(&self, graph: &Graph) -> Option<(NodeId, NodeId)> {
        for (id, node) in graph.iter() {
            for &op in &node.operands {
                if self.cycle(op) > self.cycle(id) {
                    return Some((op, id));
                }
            }
        }
        None
    }

    /// For each stage, the node set that is *computed* in it — the
    /// combinational region between that stage's input and output registers.
    pub fn stages(&self) -> Vec<Vec<NodeId>> {
        (0..self.num_stages()).map(|s| self.stage_members(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isdc_ir::OpKind;

    fn pipeline() -> (Graph, [NodeId; 5]) {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let b = g.param("b", 16);
        let a16 = g.unary(OpKind::ZeroExt { new_width: 16 }, a).unwrap();
        let x = g.binary(OpKind::Add, a16, b).unwrap();
        let y = g.binary(OpKind::Mul, x, b).unwrap();
        g.set_output(y);
        (g, [a, b, a16, x, y])
    }

    #[test]
    fn stage_accounting() {
        let (_, _) = pipeline();
        let s = Schedule::new(vec![0, 0, 0, 1, 2]);
        assert_eq!(s.num_stages(), 3);
        assert_eq!(s.stage_members(1), vec![NodeId(3)]);
        assert_eq!(s.stages().len(), 3);
    }

    #[test]
    fn register_bits_counts_crossings() {
        let (g, [_, b, a16, x, y]) = pipeline();
        // a,b,a16 at 0; x at 1; y at 2.
        let s = Schedule::new(vec![0, 0, 0, 1, 2]);
        // a: 8 bits, last use (a16) at 0 -> 0 crossings.
        // b: 16 bits, last use (y) at 2 -> 32 bits.
        // a16: 16 bits, last use (x) at 1 -> 16 bits.
        // x: 16 bits, last use (y) at 2 -> 16 bits.
        // y: output in final stage -> 0.
        assert_eq!(s.register_bits(&g), 32 + 16 + 16);
        let _ = (b, a16, x, y);
    }

    #[test]
    fn outputs_carried_to_final_stage() {
        let (g, _) = pipeline();
        // Same as above but y scheduled at stage 1 while the pipeline still
        // has 3 stages (x pushed to stage 2 makes no sense; instead give y
        // an early slot and a dangling stage via another node).
        // Simpler: schedule y at 1, max stage 1 -> y in final stage, 0 cost.
        let s = Schedule::new(vec![0, 0, 0, 0, 1]);
        // b crosses 1 boundary (16), a16 none (x at 0), x crosses 1 (16).
        assert_eq!(s.register_bits(&g), 16 + 16);
    }

    #[test]
    fn single_stage_needs_no_registers() {
        let (g, _) = pipeline();
        let s = Schedule::new(vec![0; 5]);
        assert_eq!(s.register_bits(&g), 0);
        assert_eq!(s.num_stages(), 1);
    }

    #[test]
    fn dependency_violation_detected() {
        let (g, [_, _, a16, x, _]) = pipeline();
        let s = Schedule::new(vec![0, 0, 1, 0, 2]); // a16 after its user x
        assert_eq!(s.first_dependency_violation(&g), Some((a16, x)));
        let ok = Schedule::new(vec![0, 0, 0, 1, 2]);
        assert_eq!(ok.first_dependency_violation(&g), None);
    }

    #[test]
    fn last_use_of_dead_value_is_own_stage() {
        let mut g = Graph::new("t");
        let a = g.param("a", 4);
        let dead = g.unary(OpKind::Not, a).unwrap();
        let out = g.unary(OpKind::Neg, a).unwrap();
        g.set_output(out);
        let s = Schedule::new(vec![0, 0, 1]);
        assert_eq!(s.last_use_cycle(&g, dead), 0);
        assert_eq!(s.register_bits(&g), 4); // only `a` crossing to stage 1
    }
}
