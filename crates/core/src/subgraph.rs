//! Subgraph extraction strategies (paper §III-B).
//!
//! Each ISDC iteration picks `m` combinational subgraphs from the previous
//! schedule and sends them downstream. Two orthogonal choices govern the
//! pick:
//!
//! - **Scoring** ([`ScoringStrategy`]): *delay-driven* ranks candidate paths
//!   by their estimated critical-path delay; *fanout-driven* ranks by Eq. 3,
//!   preferring wide registers with few consumers (cheap to reposition).
//! - **Shape** ([`ShapeStrategy`]): send the *path* itself, its fan-in
//!   *cone* (everything feeding the path's endpoint within the stage), or a
//!   *window* (the union of cones whose leaf sets overlap the endpoint's).
//!
//! A candidate path is a connected same-stage pair `(vi, vj)` where `vi`
//! starts the stage's combinational logic (all operands arrive from
//! registers or primary inputs) and `vj` produces a pipeline register (its
//! value crosses a stage boundary).

use crate::delay::DelayMatrix;
use crate::schedule::Schedule;
use isdc_ir::{Graph, NodeId};
use isdc_techlib::Picos;
use std::collections::BTreeSet;

/// How candidate paths are ranked (paper §III-B1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScoringStrategy {
    /// Rank by estimated critical-path delay (the baseline the paper argues
    /// against).
    DelayDriven,
    /// Rank by Eq. 3: register width over register fanout, with the
    /// normalized delay as tie-breaker.
    FanoutDriven,
}

/// How a chosen path is expanded before evaluation (paper §III-B2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShapeStrategy {
    /// The nodes of the critical path only.
    Path,
    /// The register producer's in-stage transitive fan-in cone.
    Cone,
    /// The union of same-stage cones sharing leaves with the chosen cone.
    Window,
}

/// Extraction configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExtractionConfig {
    /// Path ranking strategy.
    pub scoring: ScoringStrategy,
    /// Path expansion strategy.
    pub shape: ShapeStrategy,
    /// Number of subgraphs per iteration (the paper's `m`, typically 4-16).
    pub max_subgraphs: usize,
    /// Target clock period, used by Eq. 3's normalized-delay tie-breaker.
    pub clock_period_ps: Picos,
}

/// One extracted subgraph, ready for downstream evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct Subgraph {
    /// Member node ids, ascending and deduplicated.
    pub nodes: Vec<NodeId>,
    /// The scored path `(vi, vj)` this subgraph was grown from.
    pub seed: (NodeId, NodeId),
    /// The score that selected it (higher = extracted earlier).
    pub score: f64,
}

/// Extracts up to `config.max_subgraphs` subgraphs from the previous
/// schedule, ranked by the configured scoring strategy.
///
/// Distinctness is by node set: two paths expanding to the same cone yield
/// one subgraph.
pub fn extract_subgraphs(
    graph: &Graph,
    schedule: &Schedule,
    delays: &DelayMatrix,
    config: &ExtractionConfig,
) -> Vec<Subgraph> {
    let mut candidates = candidate_paths(graph, schedule, delays, config);
    // Highest score first; ties broken deterministically by the pair ids.
    candidates.sort_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (a.0, a.1).cmp(&(b.0, b.1)))
    });
    let mut out: Vec<Subgraph> = Vec::new();
    let mut seen: Vec<BTreeSet<NodeId>> = Vec::new();
    for (vi, vj, score) in candidates {
        if out.len() >= config.max_subgraphs {
            break;
        }
        let nodes = match config.shape {
            ShapeStrategy::Path => critical_path_nodes(graph, schedule, delays, vi, vj),
            ShapeStrategy::Cone => cone_of(graph, schedule, vj),
            ShapeStrategy::Window => window_of(graph, schedule, vj),
        };
        if nodes.is_empty() {
            continue;
        }
        let set: BTreeSet<NodeId> = nodes.iter().copied().collect();
        if seen.contains(&set) {
            continue;
        }
        seen.push(set);
        out.push(Subgraph { nodes, seed: (vi, vj), score });
    }
    out
}

/// Enumerates scored candidate paths `(vi, vj, score)`.
fn candidate_paths(
    graph: &Graph,
    schedule: &Schedule,
    delays: &DelayMatrix,
    config: &ExtractionConfig,
) -> Vec<(NodeId, NodeId, f64)> {
    let mut out = Vec::new();
    for stage in 0..schedule.num_stages() {
        let members = schedule.stage_members(stage);
        let starts: Vec<NodeId> =
            members.iter().copied().filter(|&v| starts_stage(graph, schedule, v)).collect();
        let ends: Vec<NodeId> =
            members.iter().copied().filter(|&v| produces_register(graph, schedule, v)).collect();
        for &vi in &starts {
            for &vj in &ends {
                let Some(d) = delays.get(vi, vj) else { continue };
                let score = match config.scoring {
                    ScoringStrategy::DelayDriven => d,
                    ScoringStrategy::FanoutDriven => {
                        fanout_score(graph, schedule, vj, d, config.clock_period_ps)
                    }
                };
                out.push((vi, vj, score));
            }
        }
    }
    out
}

/// Eq. 3: `(bit_count(r) + D/Tclk) / (num_users(r) + 1)`.
///
/// Our IR is single-result, so the paper's sum over a node's `k` results has
/// exactly one term. `num_users` counts the register's consumers — users
/// scheduled in later stages, the ones that read the register.
fn fanout_score(
    graph: &Graph,
    schedule: &Schedule,
    vj: NodeId,
    path_delay: Picos,
    clock_period_ps: Picos,
) -> f64 {
    let width = graph.node(vj).width as f64;
    let register_users =
        graph.users(vj).iter().filter(|&&u| schedule.cycle(u) > schedule.cycle(vj)).count();
    let tie_breaker = (path_delay / clock_period_ps).min(0.999_999);
    (width + tie_breaker) / (register_users as f64 + 1.0)
}

/// True if every operand of `v` arrives from an earlier stage (or `v` has no
/// operands): `v` starts the stage's combinational logic.
fn starts_stage(graph: &Graph, schedule: &Schedule, v: NodeId) -> bool {
    let node = graph.node(v);
    node.operands.iter().all(|&p| schedule.cycle(p) < schedule.cycle(v)) || node.operands.is_empty()
}

/// True if `v`'s value crosses a stage boundary (it feeds a pipeline
/// register): some user is in a later stage, or `v` is a graph output not in
/// the final stage.
fn produces_register(graph: &Graph, schedule: &Schedule, v: NodeId) -> bool {
    schedule.last_use_cycle(graph, v) > schedule.cycle(v)
}

/// Nodes on the maximum-delay `vi -> vj` path within the stage, by DP over
/// individual node delays with predecessor backtracking.
fn critical_path_nodes(
    graph: &Graph,
    schedule: &Schedule,
    delays: &DelayMatrix,
    vi: NodeId,
    vj: NodeId,
) -> Vec<NodeId> {
    let stage = schedule.cycle(vj);
    let mut best: Vec<f64> = vec![f64::NEG_INFINITY; graph.len()];
    let mut pred: Vec<Option<NodeId>> = vec![None; graph.len()];
    best[vi.index()] = delays.node_delay(vi);
    for v in graph.node_ids() {
        if v <= vi || schedule.cycle(v) != stage {
            continue;
        }
        for &p in &graph.node(v).operands {
            if schedule.cycle(p) != stage || best[p.index()] == f64::NEG_INFINITY {
                continue;
            }
            let cand = best[p.index()] + delays.node_delay(v);
            if cand > best[v.index()] {
                best[v.index()] = cand;
                pred[v.index()] = Some(p);
            }
        }
    }
    if best[vj.index()] == f64::NEG_INFINITY {
        return vec![];
    }
    let mut nodes = vec![vj];
    let mut cur = vj;
    while let Some(p) = pred[cur.index()] {
        nodes.push(p);
        cur = p;
    }
    nodes.reverse();
    nodes
}

/// The in-stage transitive fan-in cone of `root`: DFS through operands until
/// a stage boundary or primary input (paper §III-B2).
pub fn cone_of(graph: &Graph, schedule: &Schedule, root: NodeId) -> Vec<NodeId> {
    let stage = schedule.cycle(root);
    let mut seen = BTreeSet::new();
    let mut stack = vec![root];
    while let Some(v) = stack.pop() {
        if !seen.insert(v) {
            continue;
        }
        for &p in &graph.node(v).operands {
            if schedule.cycle(p) == stage {
                stack.push(p);
            }
        }
    }
    seen.into_iter().collect()
}

/// The leaves of a cone: out-of-stage operands feeding it (register or
/// primary-input bits).
fn cone_leaves(graph: &Graph, schedule: &Schedule, cone: &[NodeId]) -> BTreeSet<NodeId> {
    let stage = cone.first().map(|&v| schedule.cycle(v));
    let members: BTreeSet<NodeId> = cone.iter().copied().collect();
    let mut leaves = BTreeSet::new();
    for &v in cone {
        for &p in &graph.node(v).operands {
            if Some(schedule.cycle(p)) != stage || !members.contains(&p) {
                leaves.insert(p);
            }
        }
    }
    leaves
}

/// The window grown from `root`'s cone: union of same-stage cones (of other
/// register producers) whose leaf sets overlap the root cone's leaves.
pub fn window_of(graph: &Graph, schedule: &Schedule, root: NodeId) -> Vec<NodeId> {
    let base = cone_of(graph, schedule, root);
    let base_leaves = cone_leaves(graph, schedule, &base);
    if base_leaves.is_empty() {
        return base;
    }
    let stage = schedule.cycle(root);
    let mut merged: BTreeSet<NodeId> = base.iter().copied().collect();
    for v in schedule.stage_members(stage) {
        if v == root || !produces_register(graph, schedule, v) {
            continue;
        }
        let cone = cone_of(graph, schedule, v);
        let leaves = cone_leaves(graph, schedule, &cone);
        if leaves.intersection(&base_leaves).next().is_some() {
            merged.extend(cone);
        }
    }
    merged.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use isdc_ir::OpKind;

    /// Two stages: stage 0 computes x = a+b, y = x*c, w = a^b;
    /// stage 1 consumes y and w.
    fn setup() -> (Graph, Schedule, DelayMatrix, [NodeId; 7]) {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let b = g.param("b", 8);
        let c = g.param("c", 8);
        let x = g.binary(OpKind::Add, a, b).unwrap();
        let y = g.binary(OpKind::Mul, x, c).unwrap();
        let w = g.binary(OpKind::Xor, a, b).unwrap();
        let z = g.binary(OpKind::Add, y, w).unwrap();
        g.set_output(z);
        let schedule = Schedule::new(vec![0, 0, 0, 0, 0, 0, 1]);
        let delays = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 100.0, 400.0, 60.0, 100.0]);
        (g, schedule, delays, [a, b, c, x, y, w, z])
    }

    fn config(scoring: ScoringStrategy, shape: ShapeStrategy) -> ExtractionConfig {
        ExtractionConfig { scoring, shape, max_subgraphs: 8, clock_period_ps: 1000.0 }
    }

    #[test]
    fn delay_driven_prefers_long_path() {
        let (g, s, d, [a, _, _, _, y, _, _]) = setup();
        let subs = extract_subgraphs(
            &g,
            &s,
            &d,
            &config(ScoringStrategy::DelayDriven, ShapeStrategy::Path),
        );
        assert!(!subs.is_empty());
        // The top subgraph's seed must be the a->y (500ps) path.
        assert_eq!(subs[0].seed.1, y);
        assert_eq!(subs[0].seed.0, a);
        assert!(subs[0].score >= 500.0 - 1e-9);
    }

    #[test]
    fn fanout_driven_prefers_single_consumer_registers() {
        // y and w are both registers consumed once by z; both get the same
        // user count, so the wider/faster-tie wins. Give w two consumers to
        // push its score down.
        let (mut g, _, _, [a, b, _, _, y, w, _z]) = setup();
        let extra = g.binary(OpKind::Or, w, y).unwrap();
        g.set_name(extra, "extra");
        g.set_output(extra);
        let schedule = Schedule::new(vec![0, 0, 0, 0, 0, 0, 1, 1]);
        let delays = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 100.0, 400.0, 60.0, 100.0, 50.0]);
        let cfg = config(ScoringStrategy::FanoutDriven, ShapeStrategy::Path);
        let subs = extract_subgraphs(&g, &schedule, &delays, &cfg);
        assert!(!subs.is_empty());
        // y has 2 register consumers (z, extra), w has 2 as well; equal-width
        // so scores tie on users — instead check Eq.3 directly:
        let sy = fanout_score(&g, &schedule, y, 500.0, 1000.0);
        let sw = fanout_score(&g, &schedule, w, 60.0, 1000.0);
        assert!(sy > sw, "higher tie-breaker wins at equal width/users: {sy} vs {sw}");
        let _ = (a, b);
    }

    #[test]
    fn eq3_penalizes_fanout() {
        let (g, s, _, [_, _, _, _, y, _, _]) = setup();
        let one_user = fanout_score(&g, &s, y, 100.0, 1000.0);
        // Same node, pretend more users by computing with a denominator of 3:
        // construct the expectation manually.
        let width = g.node(y).width as f64;
        let expected = (width + 0.1) / 2.0;
        assert!((one_user - expected).abs() < 1e-9);
        assert!(one_user < width + 0.1); // divided by (users + 1) >= 2
    }

    #[test]
    fn path_shape_is_a_connected_chain() {
        let (g, s, d, [a, _, _, x, y, _, _]) = setup();
        let subs = extract_subgraphs(
            &g,
            &s,
            &d,
            &config(ScoringStrategy::DelayDriven, ShapeStrategy::Path),
        );
        let top = &subs[0];
        assert_eq!(top.nodes, vec![a, x, y]);
    }

    #[test]
    fn cone_covers_in_stage_fanin() {
        let (g, s, _, [a, b, c, x, y, _, _]) = setup();
        let cone = cone_of(&g, &s, y);
        // y's in-stage fan-in: params are stage 0 too, so the cone reaches
        // them: {a, b, c, x, y}.
        assert_eq!(cone, vec![a, b, c, x, y]);
    }

    #[test]
    fn cone_stops_at_stage_boundary() {
        let (g, _, _, [a, b, c, x, y, w, z]) = setup();
        // Re-schedule: params in stage 0, x/w in stage 1, y in stage 2, z in 3.
        let s = Schedule::new(vec![0, 0, 0, 1, 2, 1, 3]);
        let cone = cone_of(&g, &s, y);
        assert_eq!(cone, vec![y], "x and c are in earlier stages");
        let _ = (a, b, c, x, w, z);
    }

    #[test]
    fn window_merges_overlapping_cones() {
        let (g, _, _, [a, b, c, x, y, w, z]) = setup();
        // Schedule so that x and w are both register producers in stage 1
        // with overlapping leaves {a, b}: x feeds y (stage 2), w feeds z
        // (stage 3).
        let s = Schedule::new(vec![0, 0, 0, 1, 2, 1, 3]);
        let win_x = window_of(&g, &s, x);
        assert!(win_x.contains(&w), "w's cone shares leaves a, b with x's");
        assert!(win_x.contains(&x));
        assert!(!win_x.contains(&y), "window stays within the stage");
        let _ = (a, b, c, z);
    }

    #[test]
    fn window_without_leaves_is_the_cone() {
        let (g, s, _, [_, _, _, _, y, _, _]) = setup();
        // Params are in-stage, so y's cone has no out-of-stage leaves and
        // the window cannot grow.
        assert_eq!(window_of(&g, &s, y), cone_of(&g, &s, y));
    }

    #[test]
    fn window_is_superset_of_cone() {
        let (g, _, _, _) = setup();
        let s2 = Schedule::new(vec![0, 0, 0, 1, 1, 1, 1]);
        for v in g.node_ids() {
            let cone: BTreeSet<NodeId> = cone_of(&g, &s2, v).into_iter().collect();
            let win: BTreeSet<NodeId> = window_of(&g, &s2, v).into_iter().collect();
            assert!(win.is_superset(&cone), "window({v}) must contain cone({v})");
        }
    }

    #[test]
    fn extraction_respects_limit_and_dedups() {
        let (g, s, d, _) = setup();
        let mut cfg = config(ScoringStrategy::DelayDriven, ShapeStrategy::Cone);
        cfg.max_subgraphs = 1;
        let subs = extract_subgraphs(&g, &s, &d, &cfg);
        assert_eq!(subs.len(), 1);
        cfg.max_subgraphs = 100;
        let subs = extract_subgraphs(&g, &s, &d, &cfg);
        let sets: Vec<BTreeSet<NodeId>> =
            subs.iter().map(|s| s.nodes.iter().copied().collect()).collect();
        for (i, a) in sets.iter().enumerate() {
            for b in &sets[i + 1..] {
                assert_ne!(a, b, "duplicate subgraphs extracted");
            }
        }
    }

    #[test]
    fn single_stage_schedule_yields_no_candidates() {
        let (g, _, d, _) = setup();
        let s = Schedule::new(vec![0; 7]);
        let subs = extract_subgraphs(
            &g,
            &s,
            &d,
            &config(ScoringStrategy::FanoutDriven, ShapeStrategy::Window),
        );
        assert!(subs.is_empty(), "no registers, nothing to reposition");
    }
}
