//! The incremental scheduling engine's one non-negotiable property: it is a
//! pure performance optimization. For any graph and any monotone feedback
//! sequence, the warm-started incremental path must produce **bit-identical
//! schedules** to rebuilding and cold-solving from scratch — across random
//! DAGs (proptest), the full Table I benchsuite, and the fallback paths.

use isdc::benchsuite::{random_dag, RandomDagConfig};
use isdc::core::{
    run_isdc, schedule_with_matrix, schedule_with_matrix_dense, DelayMatrix, DirtySet,
    IncrementalScheduler, IsdcConfig, ScheduleOptions,
};
use isdc::ir::NodeId;
use isdc::synth::{OpDelayModel, SynthesisOracle};
use isdc::techlib::TechLibrary;
use proptest::prelude::*;

const CLOCK: f64 = 2500.0;

/// A monotone feedback step: a window of nodes and the fraction of the
/// window's current worst pair delay to report back.
type FeedbackStep = (usize, usize, f64);

fn feedback_strategy() -> impl Strategy<Value = (RandomDagConfig, u64, Vec<FeedbackStep>)> {
    let step = (0usize..64, 2usize..8, 0.3f64..1.1);
    (8usize..40, 2usize..5, any::<u64>(), prop::collection::vec(step, 1..10)).prop_map(
        |(num_ops, num_params, seed, steps)| {
            (
                RandomDagConfig { num_ops, num_params, widths: vec![4, 8], with_muls: false },
                seed,
                steps,
            )
        },
    )
}

/// Resolves a feedback step against the graph: a contiguous node-id window
/// and a delay derived from the *current* matrix (scaled worst member pair),
/// which keeps the sequence monotone whenever the scale is below 1 and
/// exercises no-op feedback when it is not.
fn resolve_step(m: &DelayMatrix, n: usize, step: &FeedbackStep) -> (Vec<NodeId>, f64) {
    let (start, len, scale) = *step;
    let start = start % n;
    let members: Vec<NodeId> = (start..(start + len).min(n)).map(|i| NodeId(i as u32)).collect();
    let worst = members
        .iter()
        .flat_map(|&u| members.iter().map(move |&v| (u, v)))
        .filter_map(|(u, v)| m.get(u, v))
        .fold(0.0f64, f64::max);
    (members, worst * scale)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Randomized monotone relaxation sequences: after every step, both the
    /// incrementally-maintained delay matrix and the warm-solved schedule
    /// must be bit-identical to the from-scratch pipeline.
    #[test]
    fn incremental_pipeline_is_bit_identical((config, seed, steps) in feedback_strategy()) {
        let g = random_dag(&config, seed);
        let model = OpDelayModel::new(TechLibrary::sky130());
        let mut inc = DelayMatrix::initialize(&g, &model.all_node_delays(&g));
        let mut full = inc.clone();
        let options = ScheduleOptions { clock_period_ps: CLOCK, max_stages: None };
        let mut engine = IncrementalScheduler::new(&g, &inc, &options).expect("schedulable");
        let initial = engine.reschedule(&g, &inc, &DirtySet::new(g.len())).unwrap();
        prop_assert_eq!(&initial, &schedule_with_matrix(&g, &full, CLOCK).unwrap());
        let mut carry = DirtySet::new(g.len());
        for (i, step) in steps.iter().enumerate() {
            let (members, delay_ps) = resolve_step(&inc, g.len(), step);
            // From-scratch path: full Alg. 2 pass + fresh LP build + cold solve.
            full.apply_subgraph_feedback(&members, delay_ps);
            full.reformulate(&g);
            let cold = schedule_with_matrix(&g, &full, CLOCK).unwrap();
            // Incremental path: dirty-tracked feedback, worklist sweep
            // (carrying the previous pass's escaped writes), warm re-solve.
            let mut dirty = inc.apply_subgraph_feedback(&members, delay_ps);
            dirty.union(&carry);
            carry = inc.reformulate_incremental(&g, &dirty);
            dirty.union(&carry);
            prop_assert_eq!(&inc, &full, "matrix diverged at step {}", i);
            let warm = engine.reschedule(&g, &inc, &dirty).unwrap();
            prop_assert_eq!(&warm, &cold, "schedule diverged at step {}", i);
            // And the sparse emission (both fresh paths above) against the
            // dense one-constraint-per-pair reference.
            let dense = schedule_with_matrix_dense(&g, &full, CLOCK).unwrap();
            prop_assert_eq!(&warm, &dense, "sparse diverged from dense at step {}", i);
        }
    }
}

/// The acceptance bar: on every Table I design, a full ISDC run with the
/// incremental engine matches the from-scratch run bit for bit — final
/// schedule and the entire per-iteration quality trajectory.
#[test]
fn benchsuite_runs_are_bit_identical() {
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    for b in isdc::benchsuite::suite() {
        let config = IsdcConfig {
            subgraphs_per_iteration: 8,
            max_iterations: 3,
            threads: 2,
            ..IsdcConfig::paper_defaults(b.clock_period_ps)
        };
        let warm = run_isdc(&b.graph, &model, &oracle, &config)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let cold_config = IsdcConfig { incremental: false, ..config };
        let cold = run_isdc(&b.graph, &model, &oracle, &cold_config).unwrap();
        assert_eq!(warm.schedule, cold.schedule, "{}: schedules diverged", b.name);
        assert_eq!(warm.history.len(), cold.history.len(), "{}: iteration counts", b.name);
        for (w, c) in warm.history.iter().zip(&cold.history) {
            assert_eq!(w.register_bits, c.register_bits, "{} iter {}", b.name, w.iteration);
            assert_eq!(w.num_stages, c.num_stages, "{} iter {}", b.name, w.iteration);
        }
        assert!(
            warm.history[1..].iter().all(|r| r.solver_warm),
            "{}: monotone feedback must keep every re-solve warm",
            b.name
        );
    }
}
