//! Cross-crate consistency tests: the IR interpreter, the gate-level
//! lowering, the text format and the delay oracles must all agree with each
//! other on real designs.

use isdc::ir::{interp, text, BitVecValue, Graph};
use isdc::netlist::lower_graph;
use isdc::synth::{DelayOracle, OpDelayModel, SynthScript, SynthesisOracle};
use isdc::techlib::TechLibrary;
use std::collections::HashMap;

/// Simple deterministic RNG for input vectors (no external state).
fn splitmix(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn random_inputs(g: &Graph, seed: &mut u64) -> HashMap<String, BitVecValue> {
    g.params()
        .iter()
        .map(|&p| {
            let node = g.node(p);
            let name = node.name.clone().expect("params are named");
            let mut v = BitVecValue::zero(node.width);
            for bit in 0..node.width {
                if splitmix(seed) & 1 == 1 {
                    v.set_bit(bit, true);
                }
            }
            (name, v)
        })
        .collect()
}

/// The gate-level lowering computes exactly what the interpreter computes,
/// on every benchmark, across random input vectors. This is the functional
/// soundness of the entire downstream simulator.
#[test]
fn lowering_matches_interpreter_on_every_benchmark() {
    let mut seed = 0xa5a5_5a5a_1234_5678u64;
    for b in isdc::benchsuite::suite() {
        let g = &b.graph;
        let lowered = lower_graph(g);
        for _ in 0..4 {
            let inputs = random_inputs(g, &mut seed);
            let values = interp::evaluate(g, &inputs).expect("interp");
            let aig_inputs: Vec<bool> =
                lowered.input_map.iter().map(|&(id, bit)| values[id.index()].bit(bit)).collect();
            let aig_out = lowered.aig.eval(&aig_inputs);
            for (pos, &(id, bit)) in lowered.output_map.iter().enumerate() {
                assert_eq!(
                    aig_out[pos],
                    values[id.index()].bit(bit),
                    "{}: node {id} bit {bit}",
                    b.name
                );
            }
        }
    }
}

/// Synthesis passes preserve functionality on benchmark netlists.
#[test]
fn synthesis_passes_preserve_functionality() {
    let mut seed = 0x0dd0_f00d_0000_0001u64;
    for b in isdc::benchsuite::suite().into_iter().take(8) {
        let g = &b.graph;
        let lowered = lower_graph(g);
        let optimized = SynthScript::resyn().run(&lowered.aig);
        assert_eq!(optimized.num_inputs(), lowered.aig.num_inputs());
        for _ in 0..3 {
            let inputs = random_inputs(g, &mut seed);
            let values = interp::evaluate(g, &inputs).expect("interp");
            let aig_inputs: Vec<bool> =
                lowered.input_map.iter().map(|&(id, bit)| values[id.index()].bit(bit)).collect();
            assert_eq!(
                optimized.eval(&aig_inputs),
                lowered.aig.eval(&aig_inputs),
                "{}: optimization changed function",
                b.name
            );
        }
    }
}

/// Text-format round trips preserve both structure and semantics for every
/// benchmark design.
#[test]
fn text_roundtrip_on_every_benchmark() {
    let mut seed = 0x1357_9bdf_2468_ace0u64;
    for b in isdc::benchsuite::suite() {
        let g = &b.graph;
        let printed = text::print(g);
        let reparsed =
            text::parse(&printed).unwrap_or_else(|e| panic!("{}: reparse failed: {e}", b.name));
        assert_eq!(g.len(), reparsed.len(), "{}", b.name);
        let inputs = random_inputs(g, &mut seed);
        let out1 = interp::evaluate_outputs(g, &inputs).expect("interp original");
        let out2 = interp::evaluate_outputs(&reparsed, &inputs).expect("interp reparsed");
        assert_eq!(out1, out2, "{}: semantics changed through text format", b.name);
    }
}

/// The synthesis oracle never reports more delay for a fused region than the
/// naive sum along the worst path — the inequality the whole method rests
/// on — for single-output chains (where naive sums are true upper bounds).
#[test]
fn fused_chain_delay_is_at_most_naive_sum() {
    use isdc::ir::OpKind;
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    // Pure chains with fanout 1 everywhere: naive is an upper bound.
    for n in [2usize, 4, 6] {
        let mut g = Graph::new("chain");
        let mut acc = g.param("p0", 16);
        let mut ops = Vec::new();
        for i in 1..=n {
            let p = g.param(format!("p{i}"), 16);
            acc = g.binary(OpKind::Add, acc, p).unwrap();
            ops.push(acc);
        }
        g.set_output(acc);
        let fused = oracle.evaluate(&g, &ops).delay_ps;
        let naive: f64 = ops.iter().map(|&id| model.node_delay(&g, id)).sum();
        assert!(fused <= naive + 1e-6, "{n}-chain: fused {fused}ps > naive {naive}ps");
    }
}

/// Per-op characterization agrees with the oracle on isolated ops for every
/// op kind appearing in the suite.
#[test]
fn characterization_consistent_with_oracle() {
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    let suite = isdc::benchsuite::suite();
    let g = &suite.iter().find(|b| b.name == "hsv2rgb").unwrap().graph;
    for (id, node) in g.iter() {
        if node.kind.is_free() || node.operands.is_empty() {
            continue;
        }
        // A node evaluated alone must match its characterized delay when all
        // its operands come from outside (which they do for a singleton set).
        let alone = oracle.evaluate(g, &[id]).delay_ps;
        let characterized = model.node_delay(g, id);
        assert!(
            (alone - characterized).abs() < 1e-6,
            "{:?} ({}): oracle {alone} vs characterized {characterized}",
            id,
            node.kind.mnemonic()
        );
    }
}
