//! The session/sweep acceptance property: a persistent [`IsdcSession`] is a
//! pure accelerator. A clock-period sweep through one session must produce
//! **bit-identical schedules** to independent cold `run_isdc` calls at every
//! period point, while actually reusing work (cache hits, warm LP starts)
//! from the second point on — and the learned state must survive a snapshot
//! round-trip to disk.

use isdc::core::{
    linear_grid, min_feasible_period, run_isdc, sweep_clock_period, sweep_clock_period_cold,
    sweep_clock_period_independent, IsdcConfig, IsdcSession,
};
use isdc::synth::{OpDelayModel, SynthesisOracle};
use isdc::techlib::TechLibrary;
use std::path::PathBuf;

fn quick(clock: f64) -> IsdcConfig {
    IsdcConfig {
        subgraphs_per_iteration: 8,
        max_iterations: 4,
        threads: 2,
        ..IsdcConfig::paper_defaults(clock)
    }
}

fn snapshot_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("isdc-session-sweep-{tag}-{}.json", std::process::id()))
}

#[test]
fn session_sweep_is_bit_identical_to_cold_runs_at_every_point() {
    let suite = isdc::benchsuite::suite();
    let bench = suite.iter().find(|b| b.name == "ml_core_datapath2").expect("present");
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    let base = quick(bench.clock_period_ps);
    let periods = linear_grid(bench.clock_period_ps, bench.clock_period_ps * 1.8, 5);

    let mut session = IsdcSession::new(&bench.graph, &model, &oracle);
    let warm = sweep_clock_period(&mut session, &base, &periods).expect("session sweep");
    let cold = sweep_clock_period_cold(&bench.graph, &model, &oracle, &base, &periods)
        .expect("cold sweep");
    let independent =
        sweep_clock_period_independent(&bench.graph, &model, &oracle, &base, &periods)
            .expect("independent sweep");

    assert_eq!(warm.len(), periods.len());
    assert_eq!(cold.len(), periods.len());
    for ((w, c), i) in warm.iter().zip(&cold).zip(&independent) {
        assert_eq!(w.clock_period_ps, c.clock_period_ps);
        assert!(w.feasible && c.feasible, "grid starts at the design clock: all feasible");
        assert_eq!(
            w.schedule, c.schedule,
            "schedules diverged at {}ps — the session must be invisible in results",
            w.clock_period_ps
        );
        assert_eq!(
            w.schedule, i.schedule,
            "session diverged from an independent warm-solver run at {}ps",
            w.clock_period_ps
        );
        assert_eq!(w.register_bits, c.register_bits, "at {}ps", w.clock_period_ps);
        assert_eq!(w.num_stages, c.num_stages, "at {}ps", w.clock_period_ps);
        assert_eq!(w.iterations, c.iterations, "at {}ps", w.clock_period_ps);
    }

    // And the session must actually be reusing work after the first point.
    assert!(!warm[0].warm_start, "nothing to import at the first point");
    assert!(
        warm[1..].iter().all(|p| p.warm_start),
        "ascending points must warm-start from a stored neighbour: {:?}",
        warm.iter().map(|p| p.warm_start).collect::<Vec<_>>()
    );
    for p in &warm[1..] {
        assert!(
            p.cache_hit_rate() > 0.5,
            "neighbouring periods share most subgraphs ({}ps: {:.2})",
            p.clock_period_ps,
            p.cache_hit_rate()
        );
    }
    assert!(cold.iter().all(|p| !p.warm_start && p.cache_hits == 0));
}

#[test]
fn session_state_survives_a_snapshot_roundtrip() {
    let suite = isdc::benchsuite::suite();
    let bench = suite.iter().min_by_key(|b| b.graph.len()).expect("nonempty");
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    let base = quick(bench.clock_period_ps);
    let path = snapshot_path(bench.name);
    let _ = std::fs::remove_file(&path);

    let first = {
        let mut session = IsdcSession::new(&bench.graph, &model, &oracle);
        let run = session.run(&base).expect("first run");
        assert!(!run.warm_start);
        session.save_snapshot(&path).expect("snapshot written");
        run
    };

    // A brand-new session (fresh process, conceptually) restores both the
    // delay entries and the potentials from the snapshot.
    let resumed = IsdcSession::new(&bench.graph, &model, &oracle);
    assert!(resumed.load_snapshot(&path).expect("snapshot read") > 0);
    let mut resumed = resumed;
    let second = resumed.run(&base).expect("resumed run");
    let _ = std::fs::remove_file(&path);

    assert_eq!(second.result.schedule, first.result.schedule);
    assert!(second.warm_start, "persisted potentials must warm the resumed run");
    assert!(second.result.history[0].solver_warm, "the initial solve itself goes warm");
    assert_eq!(second.cache_misses, 0, "persisted entries must serve every evaluation");
}

#[test]
fn min_feasible_period_search_finds_the_timing_floor() {
    let suite = isdc::benchsuite::suite();
    let bench = suite.iter().min_by_key(|b| b.graph.len()).expect("nonempty");
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    let base = quick(bench.clock_period_ps);
    let mut session = IsdcSession::new(&bench.graph, &model, &oracle);

    let tol = 5.0;
    let search =
        min_feasible_period(&mut session, &base, 1.0, bench.clock_period_ps, tol).expect("search");
    let found = search.min_period_ps.expect("the design clock is feasible");

    // The analytic floor: feasibility only fails when a single op exceeds
    // the period, so the minimum is the largest naive node delay.
    let floor = model.all_node_delays(&bench.graph).into_iter().fold(0.0f64, f64::max);
    assert!(found >= floor, "found {found}ps below the analytic floor {floor}ps");
    assert!(found - floor <= tol, "search stopped {found}ps, floor {floor}ps, tol {tol}ps");
    assert!(search.probes.iter().any(|p| !p.feasible), "the search must have probed below");

    // Spot-check against a direct run: feasible at `found`, infeasible at
    // the floor minus a hair.
    assert!(run_isdc(&bench.graph, &model, &oracle, &quick(found)).is_ok());
    assert!(run_isdc(&bench.graph, &model, &oracle, &quick(floor - 1.0)).is_err());
}
