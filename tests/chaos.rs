//! Chaos suite: the fleet's fault-tolerance contract under deterministic
//! fault injection (`isdc::faults`). For any single injected fault the
//! batch engine must (a) never deadlock — every test returning is half the
//! proof, the worker pool has no blocking handoff to wedge — (b) report
//! the failed job precisely (job index, shard, design, cause), and
//! (c) leave every unaffected job **bit-identical** to a fault-free run.
//!
//! The installed fault plan is process-global, so every test serializes on
//! one lock, and a quiet panic hook keeps expected injected panics out of
//! the log. CI sweeps `ISDC_FAULT_SEEDS=0..8` over this binary (see
//! `.github/workflows/ci.yml`); locally a short default range keeps the
//! suite quick.

use isdc::batch::{
    run_batch, BatchDesign, BatchOptions, BatchReport, FailPolicy, Job, JobErrorKind, JobStatus,
};
use isdc::cache::{CachedDelay, DelayCache, Fingerprint, SnapshotLoad};
use isdc::core::{linear_grid, sweep_clock_period, IsdcConfig, IsdcSession, ScheduleError};
use isdc::faults::{self, FaultKind, FaultPlan};
use isdc::synth::{DelayOracle, DelayReport, OpDelayModel, SynthesisOracle};
use isdc::techlib::TechLibrary;
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Once};
use std::time::Duration;

/// The sites a batch run actually exercises (`snapshot/write` is covered
/// separately — batches only touch it through explicit save calls;
/// `batch/shard-stall` only fires the dedicated `Stall` kind, exercised by
/// the deadline tests below).
const BATCH_SITES: &[&str] =
    &["oracle/eval", "cache/insert", "solver/drain", "pipeline/iteration", "batch/shard"];

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// Serializes fault-plan installs across this binary's test threads and
/// silences panic output while a plan is armed (injected panics are the
/// point, not noise). Real panics with no plan installed still print.
fn chaos_guard() -> MutexGuard<'static, ()> {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !faults::enabled() {
                default(info);
            }
        }));
    });
    CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Seed sweep width: `ISDC_FAULT_SEEDS=lo..hi` (CI sets `0..8`).
fn seed_range() -> std::ops::Range<u64> {
    match std::env::var("ISDC_FAULT_SEEDS") {
        Ok(s) => {
            let (lo, hi) = s.split_once("..").expect("ISDC_FAULT_SEEDS must be `lo..hi`");
            lo.trim().parse().expect("bad lo seed")..hi.trim().parse().expect("bad hi seed")
        }
        Err(_) => 0..2,
    }
}

/// A small fixed job mix over the three smallest suite designs. With
/// `shard_points: 1` it plans 6+ shards, so every batch site reaches the
/// seeded plans' maximum hit index (3) even single-threaded.
fn fixture() -> (Vec<BatchDesign>, Vec<Job>) {
    let mut suite = isdc::benchsuite::suite();
    suite.sort_by_key(|b| b.graph.len());
    let designs: Vec<BatchDesign> = suite
        .into_iter()
        .take(3)
        .map(|b| {
            let mut base = IsdcConfig::paper_defaults(b.clock_period_ps);
            base.max_iterations = 2;
            base.subgraphs_per_iteration = 4;
            base.threads = 1;
            BatchDesign { name: b.name.to_string(), graph: b.graph, base }
        })
        .collect();
    let clocks: Vec<f64> = designs.iter().map(|d| d.base.clock_period_ps).collect();
    let jobs = vec![
        Job::sweep(&designs[0].name, linear_grid(clocks[0], clocks[0] * 1.5, 2)),
        Job::sweep(&designs[1].name, linear_grid(clocks[1], clocks[1] * 1.5, 2)),
        Job::sweep(&designs[2].name, vec![clocks[2]]),
        Job::min_period(&designs[0].name, clocks[0] * 0.6, clocks[0] * 1.2, 100.0),
    ];
    (designs, jobs)
}

fn run(
    designs: &[BatchDesign],
    jobs: &[Job],
    threads: usize,
    fail_policy: FailPolicy,
    max_retries: u32,
) -> BatchReport {
    let options = BatchOptions {
        threads,
        shard_points: 1,
        fail_policy,
        max_retries,
        ..BatchOptions::default()
    };
    run_opts(designs, jobs, &options)
}

fn run_opts(designs: &[BatchDesign], jobs: &[Job], options: &BatchOptions) -> BatchReport {
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    let cache = Arc::new(DelayCache::new());
    run_batch(designs, jobs, options, &model, &oracle, &cache)
        .expect("only planning errors fail the call, and the fixture plans cleanly")
}

/// The batch counter helper: a named `MetricValue::Counter` in the fleet
/// frame, or 0.
fn counter(report: &BatchReport, name: &str) -> u64 {
    report.metrics.metrics.get(name).and_then(|v| v.as_counter()).unwrap_or(0)
}

fn assert_job_identical(
    result: &isdc::batch::JobResult,
    reference: &isdc::batch::JobResult,
    context: &str,
) {
    assert_eq!(result.points.len(), reference.points.len(), "{context}: point count");
    for (a, b) in result.points.iter().zip(&reference.points) {
        assert_eq!(a.clock_period_ps, b.clock_period_ps, "{context}");
        assert_eq!(a.feasible, b.feasible, "{context} at {}ps", a.clock_period_ps);
        assert_eq!(
            a.schedule, b.schedule,
            "{context} at {}ps: unaffected job diverged from the fault-free run",
            a.clock_period_ps
        );
    }
    assert_eq!(result.min_period_ps, reference.min_period_ps, "{context}");
}

/// The tentpole invariant: sites x seeds x thread counts, one injected
/// fault each, keep-going, no retries. Exactly the fired fault's job
/// fails (with a precise structured error); everything else matches the
/// fault-free baseline bit for bit.
#[test]
fn any_single_fault_fails_at_most_one_job_and_nothing_else() {
    let _g = chaos_guard();
    let (designs, jobs) = fixture();
    faults::clear();
    let baseline = run(&designs, &jobs, 1, FailPolicy::KeepGoing, 0);
    assert!(baseline.all_ok(), "the baseline must be fault-free");
    for threads in [1usize, 2, 4] {
        for site in BATCH_SITES {
            for seed in seed_range() {
                faults::install(FaultPlan::seeded(seed, &[site]));
                let report = run(&designs, &jobs, threads, FailPolicy::KeepGoing, 0);
                let fired = faults::injected_count();
                faults::clear();
                let context = format!("site {site} seed {seed} threads {threads}");
                assert!(fired <= 1, "{context}: a single-arm plan fires at most once");
                assert_eq!(
                    report.jobs_failed() as u64,
                    fired,
                    "{context}: each fired fault must fail exactly one job, and an \
                     unfired plan must fail none"
                );
                assert_eq!(counter(&report, "fault/injected"), fired, "{context}");
                for (ji, (result, reference)) in report.jobs.iter().zip(&baseline.jobs).enumerate()
                {
                    match &result.status {
                        JobStatus::Ok => assert_job_identical(result, reference, &context),
                        JobStatus::Failed(error) => {
                            assert_eq!(error.job, ji, "{context}: error names its job");
                            assert_eq!(error.design, result.job.design, "{context}");
                            assert!(!error.message.is_empty(), "{context}");
                            assert!(
                                result.points.is_empty() && result.min_period_ps.is_none(),
                                "{context}: failed jobs withhold their points"
                            );
                        }
                        JobStatus::TimedOut { .. } => {
                            panic!("{context}: no deadlines are armed, nothing may time out")
                        }
                        JobStatus::Skipped => {
                            panic!("{context}: keep-going must never skip a job")
                        }
                    }
                }
            }
        }
    }
}

/// Abort (the default policy), single-threaded, fault on the very first
/// shard: the queue stops, the report pinpoints job 0 shard 0, and every
/// other job is Skipped with its points withheld.
#[test]
fn abort_policy_reports_the_failure_and_skips_the_rest() {
    let _g = chaos_guard();
    let (designs, jobs) = fixture();
    faults::install(FaultPlan::new().with("batch/shard", 0, FaultKind::Panic));
    let report = run(&designs, &jobs, 1, FailPolicy::Abort, 0);
    let fired = faults::injected_count();
    faults::clear();
    assert_eq!(fired, 1);
    assert_eq!(report.jobs_failed(), 1);
    let error = report.first_error().expect("one failure");
    assert_eq!((error.job, error.shard), (0, 0), "the report pinpoints the failed shard");
    assert!(matches!(error.kind, JobErrorKind::Panic));
    assert!(error.message.contains("batch/shard"), "panic payload survives: {}", error.message);
    assert!(matches!(report.jobs[0].status, JobStatus::Failed(_)));
    for job in &report.jobs[1..] {
        assert_eq!(job.status, JobStatus::Skipped);
        assert!(job.points.is_empty() && job.min_period_ps.is_none());
    }
}

/// Bounded retries absorb transient faults — an injected panic and an
/// injected solver error both recover on re-execution (the arm fires
/// once), the report stays strict-`Ok`, the retry is visible in the
/// counters, and the recovered output is bit-identical to fault-free.
#[test]
fn transient_faults_retry_and_recover_bit_identically() {
    let _g = chaos_guard();
    let (designs, jobs) = fixture();
    faults::clear();
    let baseline = run(&designs, &jobs, 1, FailPolicy::KeepGoing, 0);
    for (site, kind) in [("oracle/eval", FaultKind::Panic), ("solver/drain", FaultKind::Error)] {
        faults::install(FaultPlan::new().with(site, 1, kind));
        let report = run(&designs, &jobs, 2, FailPolicy::Abort, 3);
        let fired = faults::injected_count();
        faults::clear();
        assert_eq!(fired, 1, "{site}: the arm must fire");
        assert!(report.all_ok(), "{site}: one retry must absorb a single injected {kind}");
        assert_eq!(report.jobs_retried(), 1, "{site}");
        assert_eq!(report.total_retries(), 1, "{site}");
        assert_eq!(counter(&report, "job/retries"), 1, "{site}");
        assert_eq!(counter(&report, "fault/injected"), 1, "{site}");
        assert_eq!(counter(&report, "job/failed"), 0, "{site}");
        for (result, reference) in report.jobs.iter().zip(&baseline.jobs) {
            assert_job_identical(result, reference, site);
        }
    }
}

/// Real solver errors are deterministic: retrying them is a waste, so the
/// retry budget must not apply. An injected-fault failure past its budget
/// still reports the retries it spent.
#[test]
fn retry_budget_is_spent_then_reported() {
    let _g = chaos_guard();
    let (designs, jobs) = fixture();
    // The arm fires at hit 0; each retry re-executes the shard, but the
    // once-only arm cannot re-fire, so budget 0 is what makes it terminal.
    faults::install(FaultPlan::new().with("solver/drain", 0, FaultKind::Error));
    let report = run(&designs, &jobs, 1, FailPolicy::KeepGoing, 0);
    faults::clear();
    assert_eq!(report.jobs_failed(), 1);
    let error = report.first_error().expect("one failure");
    assert_eq!(error.retries, 0);
    assert!(
        matches!(
            error.kind,
            JobErrorKind::Schedule(ScheduleError::Injected { site: "solver/drain" })
        ),
        "the injected error is classified, not stringly-typed: {:?}",
        error.kind
    );
}

/// A failing job's error carries its worker's flight-recorder tail, and
/// the tail names the fault site — the post-mortem the CLI prints and
/// dumps to `<out>.flight.jsonl`. The recorder is always on, so this
/// holds with tracing disabled (the default here).
#[test]
fn failed_jobs_carry_a_flight_tail_naming_the_fault_site() {
    let _g = chaos_guard();
    let (designs, jobs) = fixture();
    for (site, kind) in [("oracle/eval", FaultKind::Panic), ("solver/drain", FaultKind::Error)] {
        faults::install(FaultPlan::new().with(site, 0, kind));
        let report = run(&designs, &jobs, 1, FailPolicy::KeepGoing, 0);
        faults::clear();
        let error = report.first_error().expect("the hit-0 arm must fire and fail a job");
        assert!(!error.flight.is_empty(), "{site}: the error must carry a flight tail");
        let fault_mark = error
            .flight
            .iter()
            .find(|e| e.name == "fault")
            .unwrap_or_else(|| panic!("{site}: no fault mark in the tail: {:?}", error.flight));
        assert_eq!(
            fault_mark.arg,
            Some(isdc::telemetry::FlightArg::Str("site", site)),
            "{site}: the fault mark names its site"
        );
        // The surrounding events are the worker's real recent history:
        // they come from the worker's own track, in sequence order.
        let track = fault_mark.track;
        assert!(error.flight.iter().all(|e| e.track == track), "{site}: one track per tail");
        assert!(
            error.flight.windows(2).all(|w| w[0].seq < w[1].seq),
            "{site}: tail is in sequence order"
        );
    }
}

/// Fault-free runs attest zero across every robustness counter — the same
/// invariant the bench gate enforces on `BENCH_batch.json`.
#[test]
fn clean_runs_report_zero_fault_counters() {
    let _g = chaos_guard();
    faults::clear();
    let (designs, jobs) = fixture();
    let report = run(&designs, &jobs, 2, FailPolicy::Abort, 3);
    assert!(report.all_ok());
    assert_eq!(report.jobs_failed(), 0);
    assert_eq!(report.jobs_retried(), 0);
    assert_eq!(counter(&report, "fault/injected"), 0);
    assert_eq!(counter(&report, "job/retries"), 0);
    assert_eq!(counter(&report, "job/failed"), 0);
}

/// Seed-swept `snapshot/write` chaos: whatever the injected fault does to
/// the save — panic mid-write, reported error, torn file on disk — the
/// loader never panics, never half-merges, and quarantines anything
/// damaged so the next save starts clean.
#[test]
fn snapshot_write_faults_quarantine_and_cold_start() {
    let _g = chaos_guard();
    for seed in seed_range() {
        let path = std::env::temp_dir()
            .join(format!("isdc-chaos-snap-{}-{seed}.json", std::process::id()));
        let corrupt = {
            let mut os = path.clone().into_os_string();
            os.push(".corrupt");
            std::path::PathBuf::from(os)
        };
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&corrupt);

        let cache = DelayCache::new();
        cache.insert(
            Fingerprint(0x1000 + u128::from(seed)),
            CachedDelay { delay_ps: 10.5, aig_depth: 2, and_count: 3, arrivals: vec![] },
        );
        faults::install(FaultPlan::seeded(seed, &["snapshot/write"]));
        let saved = catch_unwind(AssertUnwindSafe(|| cache.save(&path, "chaos")));
        let fired = faults::injected_count();
        faults::clear();

        let cold = DelayCache::new();
        let outcome = catch_unwind(AssertUnwindSafe(|| cold.load_resilient(&path, "chaos")))
            .expect("the resilient loader must never panic");
        match outcome {
            SnapshotLoad::Loaded { entries } => {
                assert_eq!(entries, 1, "seed {seed}: a loadable snapshot holds the entry");
            }
            SnapshotLoad::Missing => {
                assert!(
                    fired > 0 && !matches!(saved, Ok(Ok(()))),
                    "seed {seed}: only a failed save leaves nothing behind"
                );
            }
            SnapshotLoad::ColdStart { ref reason, ref quarantined } => {
                assert!(fired > 0, "seed {seed}: a clean save must load, got: {reason}");
                assert!(cold.is_empty(), "seed {seed}: a rejected snapshot merges nothing");
                if let Some(q) = quarantined {
                    assert!(q.exists(), "seed {seed}: quarantine file present");
                }
                // The slate is clean: the same path saves and loads again.
                cache.save(&path, "chaos").expect("post-quarantine save");
                assert!(matches!(
                    cold.load_resilient(&path, "chaos"),
                    SnapshotLoad::Loaded { entries: 1 }
                ));
            }
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&corrupt);
    }
}

/// Deadline chaos: a `stall` fault wedges job 0's first shard far past its
/// per-job `deadline_ms`. The deadline token cuts the stall short, the job
/// reports terminal `TimedOut` (the retry budget must not re-run it) with
/// a flight tail naming the stall site, and every sibling job stays
/// bit-identical to the fault-free baseline under keep-going.
#[test]
fn stalled_job_times_out_and_siblings_stay_bit_identical() {
    let _g = chaos_guard();
    let (designs, mut jobs) = fixture();
    faults::clear();
    let baseline = run(&designs, &jobs, 1, FailPolicy::KeepGoing, 0);
    jobs[0].deadline_ms = Some(250);
    let saved_stall = faults::stall_ms();
    faults::set_stall_ms(60_000);
    faults::install(FaultPlan::new().with("batch/shard-stall", 0, FaultKind::Stall));
    let report = run(&designs, &jobs, 1, FailPolicy::KeepGoing, 3);
    faults::clear();
    faults::set_stall_ms(saved_stall);
    let JobStatus::TimedOut { elapsed_ms, points_completed, flight } = &report.jobs[0].status
    else {
        panic!("the stalled job must time out, got {:?}", report.jobs[0].status);
    };
    assert!(*elapsed_ms >= 100, "the 250ms deadline cut the stall, got {elapsed_ms}ms");
    assert_eq!(*points_completed, 0, "the stall hit the job's first shard");
    assert!(report.jobs[0].points.is_empty(), "timed-out jobs withhold partial points");
    assert_eq!(report.jobs[0].retries, 0, "a timeout is terminal — the budget was 3");
    let mark = flight
        .iter()
        .find(|e| e.name == "fault")
        .unwrap_or_else(|| panic!("no stall mark in the tail: {flight:?}"));
    assert_eq!(
        mark.arg,
        Some(isdc::telemetry::FlightArg::Str("site", "batch/shard-stall")),
        "the flight tail names the stall site"
    );
    assert_eq!(report.jobs_timed_out(), 1);
    assert_eq!(counter(&report, "job/timed_out"), 1);
    assert!(counter(&report, "cancel/deadline") >= 1, "the cut shard is counted");
    assert_eq!(counter(&report, "job/failed"), 0, "a timeout is not a failure");
    for (result, reference) in report.jobs.iter().zip(&baseline.jobs).skip(1) {
        assert_job_identical(result, reference, "sibling of the stalled job");
    }
}

/// The same stalled job under `FailPolicy::Abort`: the timeout stops the
/// queue and every later job is Skipped with its points withheld, exactly
/// like a failure would under abort.
#[test]
fn abort_policy_stops_the_queue_on_a_timeout() {
    let _g = chaos_guard();
    let (designs, mut jobs) = fixture();
    jobs[0].deadline_ms = Some(250);
    let saved_stall = faults::stall_ms();
    faults::set_stall_ms(60_000);
    faults::install(FaultPlan::new().with("batch/shard-stall", 0, FaultKind::Stall));
    let report = run(&designs, &jobs, 1, FailPolicy::Abort, 0);
    faults::clear();
    faults::set_stall_ms(saved_stall);
    assert!(
        matches!(report.jobs[0].status, JobStatus::TimedOut { .. }),
        "the stalled job must time out, got {:?}",
        report.jobs[0].status
    );
    assert_eq!(report.jobs_timed_out(), 1, "abort stops the queue — the rest are Skipped");
    for job in &report.jobs[1..] {
        assert_eq!(job.status, JobStatus::Skipped);
        assert!(job.points.is_empty() && job.min_period_ps.is_none());
    }
}

/// The stall watchdog: no deadline is armed, but the stalled worker stops
/// heartbeating, so the watchdog cancels its token after `stall_timeout`
/// of flight-recorder silence. The stalled job lands as TimedOut and the
/// siblings stay bit-identical.
#[test]
fn stall_watchdog_cancels_a_silent_worker() {
    let _g = chaos_guard();
    let (designs, jobs) = fixture();
    faults::clear();
    let baseline = run(&designs, &jobs, 1, FailPolicy::KeepGoing, 0);
    let saved_stall = faults::stall_ms();
    faults::set_stall_ms(60_000);
    faults::install(FaultPlan::new().with("batch/shard-stall", 0, FaultKind::Stall));
    let options = BatchOptions {
        threads: 1,
        shard_points: 1,
        fail_policy: FailPolicy::KeepGoing,
        max_retries: 0,
        fleet_deadline: None,
        stall_timeout: Some(Duration::from_millis(300)),
    };
    let report = run_opts(&designs, &jobs, &options);
    faults::clear();
    faults::set_stall_ms(saved_stall);
    assert!(
        matches!(report.jobs[0].status, JobStatus::TimedOut { .. }),
        "the watchdog must cut the stalled job, got {:?}",
        report.jobs[0].status
    );
    assert_eq!(counter(&report, "cancel/watchdog"), 1, "one token cancelled, counted once");
    for (result, reference) in report.jobs.iter().zip(&baseline.jobs).skip(1) {
        assert_job_identical(result, reference, "sibling of the watchdogged job");
    }
}

/// A 1ms fleet budget: every job lands as TimedOut — claimed shards are
/// cut at their first checkpoint, unclaimed ones are abandoned with the
/// budget named as the reason — and no job is misreported as Skipped.
#[test]
fn fleet_budget_times_out_the_whole_queue() {
    let _g = chaos_guard();
    faults::clear();
    let (designs, jobs) = fixture();
    let options = BatchOptions {
        threads: 2,
        shard_points: 1,
        fail_policy: FailPolicy::KeepGoing,
        max_retries: 0,
        fleet_deadline: Some(Duration::from_millis(1)),
        stall_timeout: None,
    };
    let report = run_opts(&designs, &jobs, &options);
    assert_eq!(
        report.jobs_timed_out(),
        report.jobs.len(),
        "{:?}",
        report.jobs.iter().map(|j| &j.status).collect::<Vec<_>>()
    );
    assert_eq!(counter(&report, "job/timed_out"), report.jobs.len() as u64);
    assert!(report.jobs.iter().all(|j| j.points.is_empty()), "partial points are withheld");
}

/// A delegating oracle that cancels `token` on its `after`-th evaluation,
/// turning wall-clock cancellation into a deterministic event.
struct CancelAfter<'a> {
    inner: &'a SynthesisOracle,
    calls: AtomicU64,
    after: u64,
    token: isdc::cancel::CancelToken,
}

impl DelayOracle for CancelAfter<'_> {
    fn evaluate(&self, graph: &isdc::ir::Graph, members: &[isdc::ir::NodeId]) -> DelayReport {
        if self.calls.fetch_add(1, Ordering::Relaxed) + 1 == self.after {
            self.token.cancel();
        }
        self.inner.evaluate(graph, members)
    }
    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// Clean-cut cancellation end to end: a sweep cancelled mid-flight returns
/// a bit-identical prefix of the uncancelled run, the cancelled session's
/// warm state is not poisoned (rerunning on it reproduces the full sweep),
/// its snapshot is safe to save, and a fresh session over that snapshot
/// file completes the same sweep bit-identically.
#[test]
fn cancelled_sweep_reruns_over_the_same_snapshot_bit_identically() {
    let _g = chaos_guard();
    faults::clear();
    let (designs, _) = fixture();
    let design = &designs[0];
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    let clock = design.base.clock_period_ps;
    let periods = linear_grid(clock, clock * 1.6, 3);
    // iteration_metrics is last-point-only in a sweep, which would make the
    // one-point probe below see more oracle calls than the full run's first
    // point; turn it off so call counts line up exactly.
    let mut base = design.base.clone();
    base.iteration_metrics = false;

    // The reference: an uncancelled sweep on a fresh session.
    let mut reference_session = IsdcSession::new(&design.graph, &model, &oracle);
    let reference =
        sweep_clock_period(&mut reference_session, &base, &periods).expect("the fixture sweeps");
    assert_eq!(reference.len(), periods.len());

    // How many oracle misses the first point costs — the cancelled run
    // cancels on the next one, i.e. somewhere inside point 2.
    let probe = CancelAfter {
        inner: &oracle,
        calls: AtomicU64::new(0),
        after: u64::MAX,
        token: isdc::cancel::CancelToken::new(),
    };
    let mut probe_session = IsdcSession::new(&design.graph, &model, &probe);
    sweep_clock_period(&mut probe_session, &base, &periods[..1])
        .expect("the probe point sweeps cleanly");
    let first_point_calls = probe.calls.load(Ordering::Relaxed);
    sweep_clock_period(&mut probe_session, &base, &periods[1..2])
        .expect("the probe tail sweeps cleanly");
    assert!(first_point_calls > 0, "the first point must consult the oracle");
    assert!(
        probe.calls.load(Ordering::Relaxed) > first_point_calls,
        "fixture sanity: point 2 must miss the session cache at least once"
    );

    // The cancelled run: the token trips inside point 2; the sweep returns
    // the completed prefix (point 1 only), bit-identical to the reference.
    let token = isdc::cancel::CancelToken::new();
    let wrapper = CancelAfter {
        inner: &oracle,
        calls: AtomicU64::new(0),
        after: first_point_calls + 1,
        token: token.clone(),
    };
    let mut session = IsdcSession::new(&design.graph, &model, &wrapper);
    let scope = token.install();
    let cancelled = sweep_clock_period(&mut session, &base, &periods)
        .expect("cancellation is clean-cut, not an error");
    drop(scope);
    assert_eq!(cancelled.len(), 1, "the sweep returns exactly the completed prefix");
    assert_eq!(cancelled[0].schedule, reference[0].schedule, "prefix is bit-identical");
    assert_eq!(cancelled[0].register_bits, reference[0].register_bits);

    // Warm state is not poisoned: the same session (token disarmed)
    // completes the full sweep bit-identically.
    let resumed = sweep_clock_period(&mut session, &base, &periods)
        .expect("the cancelled session must still sweep");
    assert_eq!(resumed.len(), periods.len());
    for (a, b) in resumed.iter().zip(&reference) {
        assert_eq!(a.feasible, b.feasible);
        assert_eq!(a.schedule, b.schedule, "rerun on the cancelled session diverged");
        assert_eq!(a.register_bits, b.register_bits);
    }

    // Snapshot-safety: the cancelled-then-resumed session's snapshot cold
    // starts a fresh session that completes the sweep bit-identically.
    let path =
        std::env::temp_dir().join(format!("isdc-chaos-cancel-rerun-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    session.save_snapshot(&path).expect("snapshot after cancellation");
    let cold_session = IsdcSession::new(&design.graph, &model, &oracle);
    assert!(
        matches!(cold_session.load_snapshot_resilient(&path), SnapshotLoad::Loaded { .. }),
        "the snapshot written after a cancelled sweep must load"
    );
    let mut cold_session = cold_session;
    let rerun = sweep_clock_period(&mut cold_session, &base, &periods)
        .expect("the snapshot-warmed session must sweep");
    assert_eq!(rerun.len(), periods.len());
    for (a, b) in rerun.iter().zip(&reference) {
        assert_eq!(a.feasible, b.feasible);
        assert_eq!(a.schedule, b.schedule, "snapshot-warmed rerun diverged");
        assert_eq!(a.register_bits, b.register_bits);
    }
    let _ = std::fs::remove_file(&path);
}

/// Capacity safety: a batch over a tightly bounded shared cache evicts —
/// the counter proves it — yet every job stays bit-identical to the
/// unbounded run. Eviction may only change hit rates, never delays.
#[test]
fn bounded_cache_evicts_without_changing_results() {
    let _g = chaos_guard();
    faults::clear();
    let (designs, jobs) = fixture();
    let baseline = run(&designs, &jobs, 2, FailPolicy::KeepGoing, 0);
    assert!(baseline.all_ok());

    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    let cache = Arc::new(DelayCache::with_capacity(16));
    let options = BatchOptions {
        threads: 2,
        shard_points: 1,
        fail_policy: FailPolicy::KeepGoing,
        max_retries: 0,
        ..BatchOptions::default()
    };
    let report = run_batch(&designs, &jobs, &options, &model, &oracle, &cache)
        .expect("the fixture plans cleanly");
    assert!(report.all_ok());
    assert!(report.cache.evictions > 0, "capacity 16 must evict on this fixture");
    assert_eq!(
        counter(&report, "cache/evictions"),
        report.cache.evictions,
        "evictions reach the metrics frame"
    );
    for (result, reference) in report.jobs.iter().zip(&baseline.jobs) {
        assert_job_identical(result, reference, "bounded-cache job");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized single faults (site, seed, thread count drawn by
    /// proptest) preserve the bit-identity of every unaffected job — the
    /// property-test form of the tentpole invariant.
    #[test]
    fn prop_single_faults_preserve_unaffected_jobs(
        seed in any::<u64>(),
        threads in 1usize..5,
        site_idx in 0usize..5,
    ) {
        let _g = chaos_guard();
        let (designs, jobs) = fixture();
        faults::clear();
        let baseline = run(&designs, &jobs, 1, FailPolicy::KeepGoing, 0);
        faults::install(FaultPlan::seeded(seed, &[BATCH_SITES[site_idx]]));
        let report = run(&designs, &jobs, threads, FailPolicy::KeepGoing, 0);
        let fired = faults::injected_count();
        faults::clear();
        prop_assert!(fired <= 1);
        prop_assert_eq!(report.jobs_failed() as u64, fired);
        for (result, reference) in report.jobs.iter().zip(&baseline.jobs) {
            if result.status.is_ok() {
                prop_assert_eq!(result.points.len(), reference.points.len());
                for (a, b) in result.points.iter().zip(&reference.points) {
                    prop_assert_eq!(a.feasible, b.feasible);
                    prop_assert_eq!(&a.schedule, &b.schedule,
                        "unaffected job diverged (seed {}, threads {})", seed, threads);
                }
            } else {
                prop_assert!(result.points.is_empty());
            }
        }
    }
}
