//! The paper's Fig. 2 worked example, reproduced literally.
//!
//! §III-A.1: the initial estimate of `D(ccp(v2, v8))` is
//! `d(v2) + d(v4) + d(v8) = 12ns`, above the 10ns clock, so `v2` and `v8`
//! land in different cycles. Downstream tools then report the subgraph
//! `g = {v2, v4}` at 7ns; the recomputed `D(ccp(v2, v8)) = D(g) + d(v8) =
//! 10ns` fits, `v8` merges into `v2`'s cycle, and register usage drops.

use isdc::core::{run_isdc, schedule_with_matrix, DelayMatrix, IsdcConfig};
use isdc::ir::{Graph, NodeId, OpKind};
use isdc::synth::{DelayOracle, DelayReport};

/// A scripted oracle returning fixed delays for specific member sets — the
/// "downstream tools" of the worked example.
struct ScriptedOracle {
    /// `(sorted member set, reported delay)` pairs.
    responses: Vec<(Vec<NodeId>, f64)>,
    /// Delay reported for anything not scripted (the naive no-gain value,
    /// high enough to never update anything).
    default_ps: f64,
}

impl DelayOracle for ScriptedOracle {
    fn evaluate(&self, _graph: &Graph, members: &[NodeId]) -> DelayReport {
        let mut sorted = members.to_vec();
        sorted.sort_unstable();
        let delay_ps = self
            .responses
            .iter()
            .find(|(set, _)| *set == sorted)
            .map(|&(_, d)| d)
            .unwrap_or(self.default_ps);
        DelayReport { delay_ps, aig_depth: 0, and_count: 0, output_arrivals: vec![] }
    }

    fn name(&self) -> &str {
        "scripted"
    }
}

/// Builds the Fig. 2 pipeline skeleton: v2 -> v4 -> v8 as a combinational
/// chain (with side inputs so each op is binary).
fn fig2_graph() -> (Graph, [NodeId; 3]) {
    let mut g = Graph::new("fig2");
    let a = g.param("a", 8);
    let b = g.param("b", 8);
    let c = g.param("c", 8);
    let d = g.param("d", 8);
    let v2 = g.binary(OpKind::Add, a, b).unwrap();
    let v4 = g.binary(OpKind::Add, v2, c).unwrap();
    let v8 = g.binary(OpKind::Add, v4, d).unwrap();
    g.set_output(v8);
    (g, [v2, v4, v8])
}

#[test]
fn initial_estimate_splits_v8_from_v2() {
    let (g, [v2, v4, v8]) = fig2_graph();
    // d(v2) = 5ns, d(v4) = 4ns, d(v8) = 3ns: the 12ns total of the paper
    // (in ps here). Clock = 10ns.
    let delays = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 0.0, 5000.0, 4000.0, 3000.0]);
    assert_eq!(delays.get(v2, v8), Some(12_000.0), "D(ccp(v2, v8)) = 12ns");
    let schedule = schedule_with_matrix(&g, &delays, 10_000.0).unwrap();
    assert!(schedule.cycle(v8) > schedule.cycle(v2), "12ns > 10ns forces v8 into a later cycle");
    let _ = v4;
}

#[test]
fn feedback_merges_v8_into_v2s_cycle() {
    let (g, [v2, v4, v8]) = fig2_graph();
    let mut delays = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 0.0, 5000.0, 4000.0, 3000.0]);
    let before = schedule_with_matrix(&g, &delays, 10_000.0).unwrap();
    assert_eq!(before.num_stages(), 2);

    // Downstream tools report subgraph g = {v2, v4} at 7ns.
    delays.apply_subgraph_feedback(&[v2, v4], 7000.0);
    delays.reformulate(&g);
    assert_eq!(
        delays.get(v2, v8),
        Some(10_000.0),
        "recalculated D(ccp(v2, v8)) = D(g) + d(v8) = 10ns"
    );

    let after = schedule_with_matrix(&g, &delays, 10_000.0).unwrap();
    assert_eq!(after.num_stages(), 1, "v8 merges into the same clock cycle");
    assert!(
        after.register_bits(&g) < before.register_bits(&g),
        "register usage decreases, as in Fig. 2(b)"
    );
}

#[test]
fn full_isdc_loop_discovers_the_merge_by_itself() {
    // Same scenario, but let the real driver find it through extraction: the
    // scripted oracle answers 7ns for the cone {a, b, c, v2, v4} that
    // extraction discovers in stage 0 (params are in-stage sources).
    let (g, [v2, v4, v8]) = fig2_graph();
    let a = g.params()[0];
    let b = g.params()[1];
    let c = g.params()[2];
    let oracle =
        ScriptedOracle { responses: vec![(vec![a, b, c, v2, v4], 7000.0)], default_ps: 1e9 };

    // A delay model stand-in: naive delays match the worked example. The
    // driver characterizes via `OpDelayModel`, so instead drive the loop
    // manually through the public pieces it uses.
    use isdc::core::{extract_subgraphs, ExtractionConfig, ScoringStrategy, ShapeStrategy};
    let mut delays = DelayMatrix::initialize(&g, &[0.0, 0.0, 0.0, 0.0, 5000.0, 4000.0, 3000.0]);
    let mut schedule = schedule_with_matrix(&g, &delays, 10_000.0).unwrap();
    assert_eq!(schedule.num_stages(), 2);
    for _iteration in 0..3 {
        let subs = extract_subgraphs(
            &g,
            &schedule,
            &delays,
            &ExtractionConfig {
                scoring: ScoringStrategy::FanoutDriven,
                shape: ShapeStrategy::Cone,
                max_subgraphs: 4,
                clock_period_ps: 10_000.0,
            },
        );
        if subs.is_empty() {
            break;
        }
        for s in &subs {
            let report = oracle.evaluate(&g, &s.nodes);
            delays.apply_subgraph_feedback(&s.nodes, report.delay_ps);
        }
        delays.reformulate(&g);
        schedule = schedule_with_matrix(&g, &delays, 10_000.0).unwrap();
    }
    assert_eq!(schedule.num_stages(), 1, "the loop finds the Fig. 2 merge");
    let _ = v8;
}

#[test]
fn driver_converges_with_scripted_oracle() {
    // The full `run_isdc` driver with a scripted oracle that reports a big
    // default: it must terminate early and change nothing.
    use isdc::synth::OpDelayModel;
    use isdc::techlib::TechLibrary;
    let (g, _) = fig2_graph();
    let oracle = ScriptedOracle { responses: vec![], default_ps: 1e9 };
    let model = OpDelayModel::new(TechLibrary::sky130());
    let mut config = IsdcConfig::paper_defaults(2500.0);
    config.threads = 1;
    let result = run_isdc(&g, &model, &oracle, &config).unwrap();
    let first = result.history[0].register_bits;
    for rec in &result.history {
        assert_eq!(rec.register_bits, first);
    }
    assert!(result.iterations() <= 3, "no-gain feedback converges quickly");
}
