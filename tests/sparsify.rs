//! LP sparsification identity: the dominance-pruned, bucket-deduped Eq. 2
//! emission is a pure constraint-count optimization. Sparse and dense
//! systems bound the same polyhedron, so `canonical_assignment` must land
//! on the same optimal point — across the full Table I benchsuite, every
//! `retarget` path, and randomized clock ladders on random DAGs.

use isdc::benchsuite::{random_dag, RandomDagConfig};
use isdc::core::{
    schedule_with_matrix, schedule_with_matrix_dense, DelayMatrix, DirtySet, IncrementalScheduler,
    ScheduleOptions,
};
use isdc::synth::OpDelayModel;
use isdc::techlib::TechLibrary;
use proptest::prelude::*;

/// Every bundled design at its own clock: fresh sparse emission vs the
/// dense one-constraint-per-pair reference, bit for bit.
#[test]
fn suite_sparse_matches_dense_at_design_clocks() {
    let model = OpDelayModel::new(TechLibrary::sky130());
    for b in isdc::benchsuite::suite() {
        let d = DelayMatrix::initialize(&b.graph, &model.all_node_delays(&b.graph));
        let sparse = schedule_with_matrix(&b.graph, &d, b.clock_period_ps).unwrap();
        let dense = schedule_with_matrix_dense(&b.graph, &d, b.clock_period_ps).unwrap();
        assert_eq!(sparse, dense, "{}: sparse vs dense diverged", b.name);
    }
}

/// Every bundled design through a retarget ladder that relaxes, revisits
/// and tightens the period: after each step the persistent (promoting /
/// demoting) engine must match a fresh dense solve — including identical
/// errors where the period is infeasible.
#[test]
fn suite_retargets_match_dense_every_step() {
    let model = OpDelayModel::new(TechLibrary::sky130());
    for b in isdc::benchsuite::suite() {
        let d = DelayMatrix::initialize(&b.graph, &model.all_node_delays(&b.graph));
        let options = ScheduleOptions { clock_period_ps: b.clock_period_ps, max_stages: None };
        let empty = DirtySet::new(b.graph.len());
        let mut engine = IncrementalScheduler::new(&b.graph, &d, &options).unwrap();
        engine.reschedule(&b.graph, &d, &empty).unwrap();
        for scale in [1.3, 2.0, 1.0, 0.85, 1.15] {
            let clock = b.clock_period_ps * scale;
            engine.retarget(&b.graph, &d, clock);
            let got = engine.reschedule(&b.graph, &d, &empty);
            let dense = schedule_with_matrix_dense(&b.graph, &d, clock);
            assert_eq!(got, dense, "{}: diverged after retarget to {clock}ps", b.name);
        }
    }
}

/// The tentpole's measurable bar: crc32's Eq. 2 constraint count drops by
/// at least 2x (the dense LP carries ~78k).
#[test]
fn crc32_constraint_count_is_at_least_halved() {
    let model = OpDelayModel::new(TechLibrary::sky130());
    let b = isdc::benchsuite::suite()
        .into_iter()
        .find(|b| b.name == "crc32")
        .expect("crc32 in the suite");
    let d = DelayMatrix::initialize(&b.graph, &model.all_node_delays(&b.graph));
    let options = ScheduleOptions { clock_period_ps: b.clock_period_ps, max_stages: None };
    let engine = IncrementalScheduler::new(&b.graph, &d, &options).unwrap();
    let stats = engine.sparsify_stats();
    assert!(
        stats.dense_constraints() > 70_000,
        "crc32's dense Eq. 2 emission should be ~78k constraints: {stats:?}"
    );
    assert!(
        stats.pruning_ratio() >= 0.5,
        "sparsification must cut the constraint count at least 2x: {stats:?}"
    );
    assert_eq!(stats.dense_constraints(), stats.constraints_emitted + stats.pruned());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random DAGs through randomized clock ladders (relaxing *and*
    /// tightening): the engine's promote-on-retarget path must stay
    /// bit-identical to the dense reference at every step.
    #[test]
    fn random_dag_retarget_ladders_match_dense(
        (num_ops, num_params, seed) in (8usize..32, 2usize..5, any::<u64>()),
        scales in prop::collection::vec(0.5f64..2.5, 1..6),
    ) {
        let config =
            RandomDagConfig { num_ops, num_params, widths: vec![4, 8], with_muls: false };
        let g = random_dag(&config, seed);
        let model = OpDelayModel::new(TechLibrary::sky130());
        let d = DelayMatrix::initialize(&g, &model.all_node_delays(&g));
        let base = 2500.0;
        let options = ScheduleOptions { clock_period_ps: base, max_stages: None };
        let empty = DirtySet::new(g.len());
        let mut engine = IncrementalScheduler::new(&g, &d, &options).expect("schedulable");
        engine.reschedule(&g, &d, &empty).unwrap();
        for &scale in &scales {
            let clock = base * scale;
            engine.retarget(&g, &d, clock);
            let got = engine.reschedule(&g, &d, &empty);
            let dense = schedule_with_matrix_dense(&g, &d, clock);
            prop_assert_eq!(got, dense, "diverged at {}ps", clock);
        }
    }
}
