//! Telemetry acceptance: traces captured over real pipeline runs are
//! well-formed, batch workers land on distinct per-worker tracks, fleet
//! metric totals are bit-identical across thread counts, and enabling
//! span collection never perturbs the schedules themselves.

use isdc::batch::{run_batch, serial_reference, BatchDesign, BatchOptions, Job};
use isdc::cache::DelayCache;
use isdc::core::{sweep_clock_period, IsdcConfig, IsdcSession};
use isdc::synth::{OpDelayModel, SynthesisOracle};
use isdc::techlib::TechLibrary;
use isdc::telemetry::{self, EventKind};
use std::sync::{Arc, Mutex};

/// The span collector is process-global; tests that enable it must not
/// interleave with each other.
static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn smallest_graph() -> (isdc::ir::Graph, f64) {
    let mut suite = isdc::benchsuite::suite();
    suite.sort_by_key(|b| b.graph.len());
    let b = suite.into_iter().next().expect("non-empty suite");
    (b.graph, b.clock_period_ps)
}

fn tiny_config(clock: f64) -> IsdcConfig {
    let mut config = IsdcConfig::paper_defaults(clock);
    config.max_iterations = 3;
    config.subgraphs_per_iteration = 8;
    config.threads = 1;
    config
}

fn small_batch(max_designs: usize) -> (Vec<BatchDesign>, Vec<Job>) {
    let mut suite = isdc::benchsuite::suite();
    suite.sort_by_key(|b| b.graph.len());
    let designs: Vec<BatchDesign> = suite
        .into_iter()
        .take(max_designs)
        .map(|b| {
            let mut base = tiny_config(b.clock_period_ps);
            base.subgraphs_per_iteration = 4;
            BatchDesign { name: b.name.to_string(), graph: b.graph, base }
        })
        .collect();
    let jobs = designs
        .iter()
        .map(|d| {
            let c = d.base.clock_period_ps;
            Job::sweep(&d.name, vec![c, c * 2.0])
        })
        .collect();
    (designs, jobs)
}

#[test]
fn sweep_trace_is_well_formed_even_with_quality_metrics_skipped() {
    let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::reset();
    telemetry::set_enabled(true);

    let (graph, clock) = smallest_graph();
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    let mut base = tiny_config(clock);
    // The satellite guarantee: iterations whose *quality metrics* are
    // skipped still get full span coverage.
    base.iteration_metrics = false;
    let mut session = IsdcSession::new(&graph, &model, &oracle);
    let sweep = sweep_clock_period(&mut session, &base, &[clock, clock * 2.0]).expect("sweep");

    telemetry::set_enabled(false);
    let trace = telemetry::take_trace();
    let summary = trace.validate().expect("well-formed trace");
    assert!(summary.spans > 0 && summary.events > 0);

    let begins = |name: &str| {
        trace.events.iter().filter(|e| e.kind == EventKind::Begin && e.name == name).count()
    };
    assert_eq!(begins("sweep"), 1);
    assert_eq!(begins("run"), 2, "one run span per sweep point");
    assert_eq!(begins("initial_solve"), 2);
    let iterations: usize = sweep.iter().map(|p| p.iterations).sum();
    assert!(
        begins("iteration") >= iterations,
        "every recorded iteration must have a span: {} < {iterations}",
        begins("iteration")
    );
    // No oracle_metrics span may exist: quality metrics were skipped.
    assert_eq!(begins("oracle_metrics"), 0);
    for stage in ["stage:extract", "stage:solve"] {
        assert!(begins(stage) > 0, "missing {stage} spans");
    }
}

#[test]
fn batch_workers_trace_onto_distinct_tracks() {
    let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::reset();
    telemetry::set_enabled(true);

    let (designs, jobs) = small_batch(4);
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    let cache = Arc::new(DelayCache::new());
    let options = BatchOptions { threads: 3, shard_points: 1, ..Default::default() };
    let report = run_batch(&designs, &jobs, &options, &model, &oracle, &cache).expect("batch");
    assert_eq!(report.threads, 3);

    telemetry::set_enabled(false);
    let trace = telemetry::take_trace();
    trace.validate().expect("well-formed batch trace");
    let mut worker_tracks: Vec<String> = trace
        .events
        .iter()
        .filter(|e| e.name == "shard")
        .map(|e| trace.track_name(e.track))
        .collect();
    worker_tracks.sort();
    worker_tracks.dedup();
    assert!(
        worker_tracks.len() >= 2,
        "3 workers over 8 shards should trace on >=2 distinct tracks: {worker_tracks:?}"
    );
    for track in &worker_tracks {
        assert!(track.starts_with("batch-worker-"), "shard span on foreign track {track}");
    }
}

/// Regression test for stale thread-track caches: `take_trace()` clears
/// the registered track table, so a second traced run must re-register
/// its workers from scratch — each `batch-worker-*` name appears exactly
/// once in the new table, and no event lands on a track id left over
/// from the first run.
#[test]
fn take_trace_clears_worker_tracks_between_runs() {
    let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (designs, jobs) = small_batch(2);
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);

    let traced_batch = || {
        telemetry::set_enabled(true);
        let cache = Arc::new(DelayCache::new());
        let options = BatchOptions { threads: 2, shard_points: 1, ..Default::default() };
        run_batch(&designs, &jobs, &options, &model, &oracle, &cache).expect("batch");
        telemetry::set_enabled(false);
        telemetry::take_trace()
    };

    telemetry::reset();
    let first = traced_batch();
    let second = traced_batch();
    for (which, trace) in [("first", &first), ("second", &second)] {
        trace.validate().unwrap_or_else(|e| panic!("{which} trace must be well-formed: {e:?}"));
        let mut workers: Vec<&String> =
            trace.tracks.iter().filter(|t| t.starts_with("batch-worker-")).collect();
        assert!(!workers.is_empty(), "{which}: batch workers must register tracks");
        let registered = workers.len();
        workers.sort();
        workers.dedup();
        assert_eq!(
            workers.len(),
            registered,
            "{which}: each worker name registers exactly once — a duplicate means a \
             worker kept a stale cached track id across take_trace: {:?}",
            trace.tracks
        );
        // Every event's track id resolves inside this trace's own table.
        let max_track = trace.events.iter().map(|e| e.track).max().expect("events");
        assert!(
            (max_track as usize) < trace.tracks.len(),
            "{which}: event on unregistered track {max_track} of {:?}",
            trace.tracks
        );
    }
}

#[test]
fn fleet_totals_are_bit_identical_across_thread_counts() {
    // Deterministic leaves only: iteration counts, stage invocations and
    // subgraph totals replay bit-identically however the batch is sharded
    // or interleaved; drain/cache/timing leaves legitimately vary.
    const DETERMINISTIC_LEAVES: [&str; 3] = ["iterations", "subgraphs_evaluated", "calls"];

    // Not a tracing test, but its worker threads would write onto the
    // traced tests' tracks if it overlapped one of them.
    let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (designs, jobs) = small_batch(3);
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);

    let reference = serial_reference(&designs, &jobs, &model, &oracle).expect("serial");
    let expected: Vec<u64> = {
        let totals = reference.metrics.totals();
        DETERMINISTIC_LEAVES.iter().map(|l| totals.get(*l).copied().unwrap_or(0)).collect()
    };
    assert!(expected.iter().all(|&v| v > 0), "reference totals must be non-trivial: {expected:?}");

    for threads in [1usize, 2, 4] {
        let cache = Arc::new(DelayCache::new());
        let options = BatchOptions { threads, shard_points: 1, ..Default::default() };
        let report = run_batch(&designs, &jobs, &options, &model, &oracle, &cache).expect("batch");
        let totals = report.metrics.totals();
        let got: Vec<u64> =
            DETERMINISTIC_LEAVES.iter().map(|l| totals.get(*l).copied().unwrap_or(0)).collect();
        assert_eq!(got, expected, "fleet totals diverged at {threads} threads");
    }
}

#[test]
fn enabling_telemetry_does_not_perturb_schedules() {
    let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (graph, clock) = smallest_graph();
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    let base = tiny_config(clock);
    let periods = [clock, clock * 1.5];

    let quiet = {
        let mut session = IsdcSession::new(&graph, &model, &oracle);
        sweep_clock_period(&mut session, &base, &periods).expect("quiet sweep")
    };
    let traced = {
        telemetry::reset();
        telemetry::set_enabled(true);
        let mut session = IsdcSession::new(&graph, &model, &oracle);
        let sweep = sweep_clock_period(&mut session, &base, &periods).expect("traced sweep");
        telemetry::set_enabled(false);
        telemetry::take_trace().validate().expect("well-formed trace");
        sweep
    };
    for (q, t) in quiet.iter().zip(&traced) {
        assert_eq!(q.feasible, t.feasible);
        assert_eq!(q.register_bits, t.register_bits);
        assert_eq!(q.num_stages, t.num_stages);
        assert_eq!(q.schedule, t.schedule, "telemetry must not perturb the optimum");
    }
}
