//! The batch engine's acceptance property: **parallel batch output is
//! bit-identical to the serial session sweep for every job** — any thread
//! count, any shard size, any job mix, shared fleet cache and all. Plus the
//! seams around it: spec-file roundtrips driving the engine, snapshot
//! preloading, and failure reporting.

use isdc::batch::{
    parse_jobs, plan_shards, render_jobs, run_batch, serial_reference, BatchDesign, BatchError,
    BatchOptions, Job, JobKind,
};
use isdc::cache::DelayCache;
use isdc::core::{
    linear_grid, min_feasible_period, sweep_clock_period, IsdcConfig, IsdcSession, SweepPoint,
};
use isdc::synth::{OpDelayModel, SynthesisOracle};
use isdc::techlib::TechLibrary;
use proptest::prelude::*;
use std::sync::Arc;

/// Deterministic helper RNG (same recipe the sibling crates' proptests use).
fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

/// The smallest suite designs — job mixes over them stay fast while still
/// exercising real scheduling, feedback and infeasibility.
fn small_designs(max_iterations: usize) -> Vec<BatchDesign> {
    let mut suite = isdc::benchsuite::suite();
    suite.sort_by_key(|b| b.graph.len());
    suite
        .into_iter()
        .take(4)
        .map(|b| {
            let mut base = IsdcConfig::paper_defaults(b.clock_period_ps);
            base.max_iterations = max_iterations;
            base.subgraphs_per_iteration = 8;
            base.threads = 1;
            BatchDesign { name: b.name.to_string(), graph: b.graph, base }
        })
        .collect()
}

/// The serial session sweep the guarantee is stated against, executed
/// through the *public core API* (one fresh session per job, exactly what
/// a user would write without the batch engine).
fn serial_points(design: &BatchDesign, kind: &JobKind) -> Vec<SweepPoint> {
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    let mut session = IsdcSession::new(&design.graph, &model, &oracle);
    match kind {
        JobKind::Sweep { periods } => {
            sweep_clock_period(&mut session, &design.base, periods).expect("serial sweep")
        }
        JobKind::MinPeriod { lo, hi, tol_ps } => {
            min_feasible_period(&mut session, &design.base, *lo, *hi, *tol_ps)
                .expect("serial search")
                .probes
        }
    }
}

/// A random mix of sweep jobs (ascending, descending, repeated periods —
/// some dipping below the feasibility floor) and min-period searches.
fn arbitrary_mix() -> impl Strategy<Value = (Vec<Job>, usize, usize, u64)> {
    (any::<u64>(), 1usize..5, 0usize..4).prop_map(|(seed, threads, shard_points)| {
        let designs = small_designs(3);
        let mut state = seed;
        let n_jobs = 2 + (lcg(&mut state) as usize % 4);
        let jobs: Vec<Job> = (0..n_jobs)
            .map(|_| {
                let d = &designs[lcg(&mut state) as usize % designs.len()];
                let clock = d.base.clock_period_ps;
                match lcg(&mut state) % 4 {
                    0 => Job::min_period(&d.name, 1.0, clock, 50.0),
                    1 => {
                        // Descending grid, possibly dipping infeasible.
                        let lo = clock * (0.2 + 0.2 * (lcg(&mut state) % 3) as f64);
                        let mut periods = linear_grid(lo, clock, 3);
                        periods.reverse();
                        Job::sweep(&d.name, periods)
                    }
                    2 => {
                        // Repeats: re-runs must replay purely from cache.
                        Job::sweep(&d.name, vec![clock, clock * 1.4, clock])
                    }
                    _ => {
                        let points = 2 + (lcg(&mut state) as usize % 3);
                        Job::sweep(&d.name, linear_grid(clock, clock * 1.8, points))
                    }
                }
            })
            .collect();
        (jobs, threads, shard_points, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole guarantee, against randomized job mixes, thread counts
    /// and shard sizes.
    #[test]
    fn batch_is_bit_identical_to_serial_session_sweeps(
        (jobs, threads, shard_points, seed) in arbitrary_mix()
    ) {
        let designs = small_designs(3);
        let lib = TechLibrary::sky130();
        let model = OpDelayModel::new(lib.clone());
        let oracle = SynthesisOracle::new(lib);
        let cache = Arc::new(DelayCache::new());
        let options = BatchOptions { threads, shard_points, ..Default::default() };
        let report = run_batch(&designs, &jobs, &options, &model, &oracle, &cache)
            .expect("batch run");
        prop_assert_eq!(report.jobs.len(), jobs.len());
        for result in &report.jobs {
            let design = designs.iter().find(|d| d.name == result.job.design).expect("resolved");
            let reference = serial_points(design, &result.job.kind);
            prop_assert_eq!(result.points.len(), reference.len(),
                "{} (seed {seed}): point count", &result.job.design);
            for (b, s) in result.points.iter().zip(&reference) {
                prop_assert_eq!(b.clock_period_ps, s.clock_period_ps);
                prop_assert_eq!(b.feasible, s.feasible,
                    "{} at {}ps (seed {seed})", &result.job.design, b.clock_period_ps);
                prop_assert_eq!(&b.schedule, &s.schedule,
                    "{} at {}ps (seed {seed}): batch diverged from the serial session sweep",
                    &result.job.design, b.clock_period_ps);
            }
        }
    }
}

#[test]
fn spec_file_roundtrip_drives_the_engine() {
    let designs = small_designs(3);
    let spec = render_jobs(&[
        Job::sweep(&designs[0].name, vec![designs[0].base.clock_period_ps]),
        Job::min_period(&designs[1].name, 1.0, designs[1].base.clock_period_ps, 50.0),
    ]);
    let jobs = parse_jobs(&spec).expect("roundtrip");
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    let cache = Arc::new(DelayCache::new());
    let report = run_batch(
        &designs,
        &jobs,
        &BatchOptions { threads: 2, ..Default::default() },
        &model,
        &oracle,
        &cache,
    )
    .expect("batch");
    assert!(report.jobs[0].points[0].feasible);
    let found = report.jobs[1].min_period_ps.expect("design clock is feasible");
    // Same floor the serial search finds.
    let serial = serial_points(&designs[1], &jobs[1].kind);
    assert!(serial.iter().any(|p| p.feasible));
    assert_eq!(
        report.jobs[1].points.iter().map(|p| p.clock_period_ps).collect::<Vec<_>>(),
        serial.iter().map(|p| p.clock_period_ps).collect::<Vec<_>>(),
        "probe sequences must match"
    );
    assert!(found > 0.0);
}

#[test]
fn preloaded_snapshot_accelerates_without_changing_schedules() {
    let designs = small_designs(4);
    let jobs: Vec<Job> = designs
        .iter()
        .map(|d| {
            Job::sweep(
                &d.name,
                linear_grid(d.base.clock_period_ps, d.base.clock_period_ps * 1.6, 3),
            )
        })
        .collect();
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    let options = BatchOptions { threads: 2, shard_points: 2, ..Default::default() };

    // First batch fills a cache; merge it into a fresh one (the
    // fleet-publication primitive) and re-run: everything replays.
    let first_cache = Arc::new(DelayCache::new());
    let first = run_batch(&designs, &jobs, &options, &model, &oracle, &first_cache).unwrap();
    let preloaded = Arc::new(DelayCache::new());
    assert!(preloaded.merge(&first_cache) > 0);
    let second = run_batch(&designs, &jobs, &options, &model, &oracle, &preloaded).unwrap();
    assert_eq!(second.cache.misses, 0, "a preloaded fleet cache must serve every evaluation");
    assert!(second.cache_hit_rate() == 1.0);
    for (a, b) in first.jobs.iter().zip(&second.jobs) {
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.schedule, pb.schedule, "preloading must not change schedules");
        }
    }
    // And the engine's own serial reference agrees with both.
    let serial = serial_reference(&designs, &jobs, &model, &oracle).unwrap();
    for (a, s) in second.jobs.iter().zip(&serial.jobs) {
        for (pa, ps) in a.points.iter().zip(&s.points) {
            assert_eq!(pa.schedule, ps.schedule);
        }
    }
}

#[test]
fn unknown_design_fails_before_any_work() {
    let designs = small_designs(3);
    let jobs = vec![Job::sweep("no_such_design", vec![2500.0])];
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    let cache = Arc::new(DelayCache::new());
    let err =
        run_batch(&designs, &jobs, &BatchOptions::default(), &model, &oracle, &cache).unwrap_err();
    assert_eq!(err, BatchError::UnknownDesign { job: 0, design: "no_such_design".into() });
    assert!(cache.is_empty(), "planning failures must not schedule anything");
}

#[test]
fn sharding_splits_only_sweeps_and_respects_the_cap() {
    let designs = small_designs(3);
    let clock = designs[0].base.clock_period_ps;
    let jobs = vec![
        Job::sweep(&designs[0].name, linear_grid(clock, clock * 2.0, 7)),
        Job::min_period(&designs[1].name, 1.0, designs[1].base.clock_period_ps, 50.0),
    ];
    let shards = plan_shards(
        &designs,
        &jobs,
        &BatchOptions { threads: 3, shard_points: 3, ..Default::default() },
    )
    .unwrap();
    assert_eq!(shards.len(), 4, "ceil(7/3) sweep shards + 1 search shard");
    let mut rebuilt: Vec<f64> = Vec::new();
    for s in &shards {
        if let (0, JobKind::Sweep { periods }) = (s.job, &s.kind) {
            assert!(periods.len() <= 3);
            rebuilt.extend(periods);
        }
    }
    assert_eq!(rebuilt, linear_grid(clock, clock * 2.0, 7), "chunks must stitch back in order");
}
