//! Acceptance test for the isdc-cache subsystem: running ISDC on a
//! benchsuite design twice against the same persistent cache file must (a)
//! produce exactly the schedules an uncached run produces, and (b) serve the
//! second run mostly from the snapshot, with a strictly positive hit rate.

use isdc::core::{run_isdc, IsdcConfig};
use isdc::synth::{OpDelayModel, SynthesisOracle};
use isdc::techlib::TechLibrary;
use std::path::PathBuf;

fn fresh_snapshot_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("isdc-cache-roundtrip-{tag}-{}.json", std::process::id()))
}

#[test]
fn persistent_cache_preserves_results_and_hits_on_second_run() {
    let suite = isdc::benchsuite::suite();
    let bench = suite.iter().min_by_key(|b| b.graph.len()).expect("suite is nonempty");
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);

    let base = IsdcConfig {
        subgraphs_per_iteration: 8,
        max_iterations: 4,
        threads: 2,
        ..IsdcConfig::paper_defaults(bench.clock_period_ps)
    };
    let path = fresh_snapshot_path(bench.name);
    let _ = std::fs::remove_file(&path);

    let uncached = run_isdc(&bench.graph, &model, &oracle, &base).expect("uncached run schedules");

    let cached_config = base.clone().with_cache(Some(path.clone()));
    let first = run_isdc(&bench.graph, &model, &oracle, &cached_config)
        .expect("first cached run schedules");
    assert!(path.exists(), "snapshot must be written after the run");

    let second = run_isdc(&bench.graph, &model, &oracle, &cached_config)
        .expect("second cached run schedules");
    let _ = std::fs::remove_file(&path);

    // (a) Caching must be invisible in the results.
    for (label, run) in [("first cached", &first), ("second cached", &second)] {
        assert_eq!(
            run.schedule, uncached.schedule,
            "{label}: schedule diverged from the uncached run"
        );
        assert_eq!(
            run.schedule.register_bits(&bench.graph),
            uncached.schedule.register_bits(&bench.graph),
            "{label}: register bits diverged"
        );
        assert_eq!(
            run.history.iter().map(|r| r.register_bits).collect::<Vec<_>>(),
            uncached.history.iter().map(|r| r.register_bits).collect::<Vec<_>>(),
            "{label}: per-iteration trajectory diverged"
        );
    }

    // (b) The snapshot must make the second run strictly warmer.
    let stats1 = first.cache_stats.expect("stats recorded");
    let stats2 = second.cache_stats.expect("stats recorded");
    assert!(stats2.hits > 0, "second run must hit the persisted cache: {stats2:?}");
    assert!(
        stats2.hit_rate() > stats1.hit_rate() || stats1.hit_rate() == 1.0,
        "persisted entries must raise the hit rate: {stats1:?} -> {stats2:?}"
    );
    assert!(
        stats2.misses < stats1.misses || stats1.misses == 0,
        "second run must miss less: {stats1:?} -> {stats2:?}"
    );
    let recorded_hits: u64 = second.history.iter().map(|r| r.cache_hits).sum();
    assert_eq!(recorded_hits, stats2.hits, "history must account for every hit");
}

#[test]
fn snapshot_from_different_oracle_configuration_is_not_replayed() {
    // Delays measured against one library/corner must never be replayed
    // against another: the snapshot's oracle tag guards the load.
    let suite = isdc::benchsuite::suite();
    let bench = suite.iter().min_by_key(|b| b.graph.len()).expect("nonempty");
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let path = fresh_snapshot_path("xconfig");
    let _ = std::fs::remove_file(&path);
    let base = IsdcConfig {
        max_iterations: 3,
        threads: 1,
        ..IsdcConfig::paper_defaults(bench.clock_period_ps)
    };
    let cached_config = base.clone().with_cache(Some(path.clone()));

    // Populate the snapshot with typical-corner delays.
    let typical = SynthesisOracle::new(lib);
    run_isdc(&bench.graph, &model, &typical, &cached_config).expect("typical run");

    // A slow-corner oracle must ignore it and re-measure.
    let slow = SynthesisOracle::new(isdc::techlib::TechLibrary::sky130_corner(
        isdc::techlib::Corner::Slow,
    ));
    let with_stale_snapshot =
        run_isdc(&bench.graph, &model, &slow, &cached_config).expect("slow cached run");
    let reference = run_isdc(&bench.graph, &model, &slow, &base).expect("slow uncached run");
    let _ = std::fs::remove_file(&path);

    assert_eq!(
        with_stale_snapshot.schedule, reference.schedule,
        "foreign snapshot must not leak into the slow-corner schedule"
    );
    let stats = with_stale_snapshot.cache_stats.expect("stats recorded");
    assert!(stats.inserts > 0, "slow corner must re-measure, not replay: {stats:?}");
}

#[test]
fn corrupt_snapshot_is_ignored_not_fatal() {
    let suite = isdc::benchsuite::suite();
    let bench = suite.iter().min_by_key(|b| b.graph.len()).expect("nonempty");
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    let path = fresh_snapshot_path("corrupt");
    std::fs::write(&path, "definitely { not json").expect("write temp file");
    let config = IsdcConfig {
        max_iterations: 2,
        threads: 1,
        ..IsdcConfig::paper_defaults(bench.clock_period_ps)
    }
    .with_cache(Some(path.clone()));
    let result = run_isdc(&bench.graph, &model, &oracle, &config)
        .expect("a bad snapshot must not break scheduling");
    let _ = std::fs::remove_file(&path);
    assert!(result.cache_stats.is_some());
}
