//! Property-based tests over randomized graphs and constraint systems:
//! the core invariants that must hold for *any* input, not just the suite.

use isdc::benchsuite::{random_dag, RandomDagConfig};
use isdc::core::{
    extract_subgraphs, run_sdc, schedule_with_matrix, DelayMatrix, ExtractionConfig,
    ScoringStrategy, ShapeStrategy,
};
use isdc::ir::NodeId;
use isdc::sdc::{minimize, DifferenceSystem, VarId};
use isdc::synth::{DelayOracle, OpDelayModel, SynthesisOracle};
use isdc::techlib::TechLibrary;
use proptest::prelude::*;

fn dag_config() -> impl Strategy<Value = (RandomDagConfig, u64)> {
    (2usize..30, 2usize..5, prop::bool::ANY, any::<u64>()).prop_map(
        |(num_ops, num_params, with_muls, seed)| {
            (RandomDagConfig { num_ops, num_params, widths: vec![4, 8], with_muls }, seed)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every random DAG schedules without dependency violations, and every
    /// same-stage pair respects the delay estimates (Eq. 2 is enforced).
    #[test]
    fn random_dags_schedule_validly((config, seed) in dag_config()) {
        let g = random_dag(&config, seed);
        let lib = TechLibrary::sky130();
        let model = OpDelayModel::new(lib);
        let clock = 2500.0;
        let (schedule, delays) = run_sdc(&g, &model, clock).expect("schedulable");
        prop_assert_eq!(schedule.first_dependency_violation(&g), None);
        for stage in 0..schedule.num_stages() {
            let members = schedule.stage_members(stage);
            for &u in &members {
                for &v in &members {
                    if let Some(d) = delays.get(u, v) {
                        prop_assert!(d <= clock + 1e-6);
                    }
                }
            }
        }
    }

    /// Subgraph feedback never increases any delay-matrix entry, and
    /// reformulation keeps the matrix self-consistent (self-delays intact
    /// for unevaluated nodes, connectivity preserved).
    #[test]
    fn feedback_monotonically_relaxes((config, seed) in dag_config(), delay in 1.0f64..5000.0) {
        let g = random_dag(&config, seed);
        let lib = TechLibrary::sky130();
        let model = OpDelayModel::new(lib);
        let mut m = DelayMatrix::initialize(&g, &model.all_node_delays(&g));
        let before = m.clone();
        // Feed back an arbitrary subgraph: the first half of the nodes.
        let members: Vec<NodeId> = g.node_ids().take(g.len() / 2 + 1).collect();
        m.apply_subgraph_feedback(&members, delay);
        m.reformulate(&g);
        for u in g.node_ids() {
            for v in g.node_ids() {
                let b = before.get(u, v);
                let a = m.get(u, v);
                prop_assert_eq!(a.is_some(), b.is_some(), "connectivity changed");
                if let (Some(a), Some(b)) = (a, b) {
                    prop_assert!(a <= b + 1e-9, "({}, {}) grew {} -> {}", u, v, b, a);
                }
            }
        }
    }

    /// The LP solver's optimum is feasible and no better than any feasible
    /// integer point found by hill-descent from it (local optimality probe).
    #[test]
    fn lp_optimum_is_feasible_and_locally_minimal(seed in any::<u64>()) {
        let mut state = seed;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as i64
        };
        let n = 4 + (seed % 4) as usize;
        let mut sys = DifferenceSystem::new(n);
        for _ in 0..2 * n {
            let u = rng().unsigned_abs() as usize % n;
            let v = rng().unsigned_abs() as usize % n;
            if u != v {
                sys.add_constraint(VarId(u as u32), VarId(v as u32), rng() % 5);
            }
        }
        let mut weights: Vec<i64> = (0..n).map(|_| rng() % 4).collect();
        let s: i64 = weights.iter().sum();
        weights[0] -= s;
        if let Ok(sol) = minimize(&sys, &weights) {
            prop_assert!(sys.first_violation(&sol.assignment).is_none());
            // Single-variable perturbations cannot improve a convex LP optimum.
            for i in 0..n {
                for delta in [-1i64, 1] {
                    let mut probe = sol.assignment.clone();
                    probe[i] += delta;
                    if sys.first_violation(&probe).is_none() {
                        let obj: i64 =
                            weights.iter().zip(&probe).map(|(&w, &x)| w * x).sum();
                        prop_assert!(obj >= sol.objective,
                            "perturbation found better objective {} < {}", obj, sol.objective);
                    }
                }
            }
        }
    }

    /// Extracted subgraphs are well-formed: nonempty, deduplicated, within
    /// bounds, and every member is scheduled in the seed's stage.
    #[test]
    fn extraction_produces_well_formed_subgraphs((config, seed) in dag_config()) {
        let g = random_dag(&config, seed);
        let lib = TechLibrary::sky130();
        let model = OpDelayModel::new(lib);
        let (schedule, delays) = run_sdc(&g, &model, 2500.0).expect("schedulable");
        for scoring in [ScoringStrategy::DelayDriven, ScoringStrategy::FanoutDriven] {
            for shape in [ShapeStrategy::Path, ShapeStrategy::Cone, ShapeStrategy::Window] {
                let cfg = ExtractionConfig {
                    scoring,
                    shape,
                    max_subgraphs: 6,
                    clock_period_ps: 2500.0,
                };
                let subs = extract_subgraphs(&g, &schedule, &delays, &cfg);
                prop_assert!(subs.len() <= 6);
                for s in &subs {
                    prop_assert!(!s.nodes.is_empty());
                    let stage = schedule.cycle(s.seed.1);
                    for &n in &s.nodes {
                        prop_assert_eq!(schedule.cycle(n), stage,
                            "subgraph crosses stage boundary");
                    }
                    // Sorted and deduplicated.
                    for w in s.nodes.windows(2) {
                        prop_assert!(w[0] < w[1]);
                    }
                }
            }
        }
    }

    /// One feedback round with the real oracle never worsens the schedule
    /// objective on random DAGs.
    #[test]
    fn one_feedback_round_never_hurts((config, seed) in dag_config()) {
        let g = random_dag(&config, seed);
        let lib = TechLibrary::sky130();
        let model = OpDelayModel::new(lib.clone());
        let oracle = SynthesisOracle::new(lib);
        let clock = 2500.0;
        let (schedule, mut delays) = run_sdc(&g, &model, clock).expect("schedulable");
        let cfg = ExtractionConfig {
            scoring: ScoringStrategy::FanoutDriven,
            shape: ShapeStrategy::Window,
            max_subgraphs: 8,
            clock_period_ps: clock,
        };
        for s in extract_subgraphs(&g, &schedule, &delays, &cfg) {
            let report = oracle.evaluate(&g, &s.nodes);
            delays.apply_subgraph_feedback(&s.nodes, report.delay_ps);
        }
        delays.reformulate(&g);
        let refined = schedule_with_matrix(&g, &delays, clock).expect("reschedulable");
        prop_assert!(refined.register_bits(&g) <= schedule.register_bits(&g));
        prop_assert_eq!(refined.first_dependency_violation(&g), None);
    }
}
