//! End-to-end integration tests: the full SDC -> feedback -> ISDC pipeline
//! on real benchmark designs, checking the invariants the paper's evaluation
//! relies on.

use isdc::core::metrics::{post_synthesis_slack, stage_sta_delays};
use isdc::core::{run_isdc, run_sdc, IsdcConfig};
use isdc::synth::{NaiveSumOracle, OpDelayModel, SynthesisOracle};
use isdc::techlib::TechLibrary;

fn quick_config(clock_ps: f64) -> IsdcConfig {
    IsdcConfig {
        subgraphs_per_iteration: 8,
        max_iterations: 6,
        threads: 2,
        ..IsdcConfig::paper_defaults(clock_ps)
    }
}

/// The fast subset of the suite used for per-test runs.
fn fast_suite() -> Vec<isdc::benchsuite::Benchmark> {
    isdc::benchsuite::suite().into_iter().filter(|b| b.graph.len() < 200).collect()
}

#[test]
fn baseline_schedules_are_valid_on_every_benchmark() {
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib);
    for b in isdc::benchsuite::suite() {
        let (schedule, delays) = run_sdc(&b.graph, &model, b.clock_period_ps)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert_eq!(
            schedule.first_dependency_violation(&b.graph),
            None,
            "{}: dependency violated",
            b.name
        );
        assert_eq!(schedule.len(), b.graph.len());
        // Timing: every same-stage pair obeys the estimated delays.
        for stage in 0..schedule.num_stages() {
            let members = schedule.stage_members(stage);
            for &u in &members {
                for &v in &members {
                    if let Some(d) = delays.get(u, v) {
                        assert!(
                            d <= b.clock_period_ps + 1e-6,
                            "{}: stage {stage} pair ({u}, {v}) estimated {d}ps",
                            b.name
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn isdc_improves_or_preserves_registers_on_fast_benchmarks() {
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    let mut improved = 0usize;
    let mut total = 0usize;
    for b in fast_suite() {
        let result = run_isdc(&b.graph, &model, &oracle, &quick_config(b.clock_period_ps))
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let first = result.history[0].register_bits;
        let last = result.final_record().register_bits;
        assert!(last <= first, "{}: registers regressed {first} -> {last}", b.name);
        assert_eq!(result.schedule.first_dependency_violation(&b.graph), None);
        total += 1;
        if last < first {
            improved += 1;
        }
    }
    assert!(
        improved * 2 >= total,
        "feedback should improve at least half the fast suite ({improved}/{total})"
    );
}

#[test]
fn isdc_register_history_is_monotone() {
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    for b in fast_suite().into_iter().take(6) {
        let result = run_isdc(&b.graph, &model, &oracle, &quick_config(b.clock_period_ps)).unwrap();
        for w in result.history.windows(2) {
            assert!(
                w[1].register_bits <= w[0].register_bits,
                "{}: non-monotone register history",
                b.name
            );
        }
    }
}

#[test]
fn no_gain_oracle_is_a_no_op_across_the_suite() {
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = NaiveSumOracle::new(OpDelayModel::new(lib));
    for b in fast_suite().into_iter().take(5) {
        let result = run_isdc(&b.graph, &model, &oracle, &quick_config(b.clock_period_ps)).unwrap();
        let first = result.history[0].register_bits;
        for rec in &result.history {
            assert_eq!(rec.register_bits, first, "{}: naive oracle changed schedule", b.name);
        }
    }
}

#[test]
fn stage_count_never_grows_under_feedback() {
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    for b in fast_suite() {
        let result = run_isdc(&b.graph, &model, &oracle, &quick_config(b.clock_period_ps)).unwrap();
        assert!(
            result.final_record().num_stages <= result.history[0].num_stages,
            "{}: stages grew",
            b.name
        );
    }
}

#[test]
fn slack_stays_finite_and_stage_delays_positive() {
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    for b in fast_suite().into_iter().take(6) {
        let result = run_isdc(&b.graph, &model, &oracle, &quick_config(b.clock_period_ps)).unwrap();
        let slack = post_synthesis_slack(&b.graph, &result.schedule, &oracle, b.clock_period_ps);
        assert!(slack.is_finite());
        assert!(slack <= b.clock_period_ps);
        let sta = stage_sta_delays(&b.graph, &result.schedule, &oracle);
        assert_eq!(sta.len() as u32, result.schedule.num_stages());
        assert!(sta.iter().all(|&d| d >= 0.0));
    }
}

#[test]
fn deterministic_across_runs_and_thread_counts() {
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    let suite = isdc::benchsuite::suite();
    let b = suite.iter().find(|b| b.name == "ml_core_datapath2").unwrap();
    let mut config = quick_config(b.clock_period_ps);
    config.threads = 1;
    let r1 = run_isdc(&b.graph, &model, &oracle, &config).unwrap();
    config.threads = 4;
    let r2 = run_isdc(&b.graph, &model, &oracle, &config).unwrap();
    assert_eq!(r1.schedule, r2.schedule, "thread count must not affect the result");
    let bits1: Vec<u64> = r1.history.iter().map(|r| r.register_bits).collect();
    let bits2: Vec<u64> = r2.history.iter().map(|r| r.register_bits).collect();
    assert_eq!(bits1, bits2);
}
