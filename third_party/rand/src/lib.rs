//! Offline stand-in for the `rand` crate.
//!
//! Implements the tiny API subset this workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64` and `Rng::gen_range` over integer ranges —
//! on top of a SplitMix64 generator. The stream differs from upstream
//! `StdRng` (which is ChaCha-based), but every consumer in this workspace
//! only relies on determinism for a fixed seed, not on a particular stream.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can produce uniformly distributed samples from an RNG.
///
/// Implemented for `Range`/`RangeInclusive` over the integer types the
/// workspace draws from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one sample.
    fn sample(self, rng: &mut impl RngCore) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The raw entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range, e.g. `rng.gen_range(0..10)`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniformly random bool.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// RNGs constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic seedable generator (SplitMix64).
    ///
    /// Stands in for `rand::rngs::StdRng`; the stream differs from upstream
    /// but is stable across runs and platforms for a given seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed.wrapping_add(0x9e3779b97f4a7c15) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same =
            (0..64).filter(|_| a.gen_range(0u64..1 << 32) == b.gen_range(0u64..1 << 32)).count();
        assert!(same < 4);
    }
}
