//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box` and the `criterion_group!`/`criterion_main!` macros — as a
//! plain wall-clock harness: per benchmark it warms up, runs
//! `sample_size` timed samples (auto-scaling iterations per sample so fast
//! bodies are measured over many iterations), and prints min/mean.
//! No statistics, plots or baselines.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group, e.g. `adder_chain/16`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        Self { id: format!("{name}/{param}") }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(param: impl Display) -> Self {
        Self { id: param.to_string() }
    }
}

impl<S: Into<String>> From<S> for BenchmarkId {
    fn from(s: S) -> Self {
        Self { id: s.into() }
    }
}

/// Drives timed iterations of one benchmark body.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `f`, running it repeatedly; called once per benchmark body.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up + calibration: find an iteration count that makes one
        // sample take a measurable amount of time.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed();
        self.iters_per_sample = if once < Duration::from_millis(1) {
            (Duration::from_millis(5).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u64
        } else {
            1
        };
        for _ in 0..self.target_samples {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(t.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn run_one(label: &str, samples: usize, body: impl FnOnce(&mut Bencher)) {
    let mut bencher =
        Bencher { iters_per_sample: 1, samples: Vec::new(), target_samples: samples.max(1) };
    body(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().expect("nonempty");
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "{label:<40} min {min:>12?}  mean {mean:>12?}  ({} samples x {} iters)",
        bencher.samples.len(),
        bencher.iters_per_sample
    );
}

/// A named set of related benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.sample_size, |b| f(b));
        self
    }

    /// Ends the group (drop-equivalent; kept for API compatibility).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 20, _criterion: self }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.id, 20, |b| f(b));
        self
    }
}

/// Bundles benchmark functions into a group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_bodies() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut ran = 0usize;
        group.sample_size(3).bench_with_input(BenchmarkId::new("f", 1), &2u64, |b, &x| {
            b.iter(|| {
                ran += 1;
                x * 2
            });
        });
        group.finish();
        assert!(ran >= 3);
    }

    #[test]
    fn bench_function_accepts_str_ids() {
        let mut c = Criterion::default();
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
    }
}
