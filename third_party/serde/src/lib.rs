//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! the real `serde` cannot be fetched. Nothing in this workspace actually
//! serializes through serde (the only on-disk format, the delay-cache
//! snapshot, uses a hand-rolled JSON codec in `isdc-cache`), but the IR and
//! techlib types carry `#[derive(Serialize, Deserialize)]` and `#[serde(..)]`
//! attributes so they are ready for the real crate when it is available.
//!
//! This shim keeps those derives compiling by expanding them to nothing while
//! still registering the `serde` helper attribute as inert.

use proc_macro::TokenStream;

/// Inert `Serialize` derive: accepts `#[serde(...)]` attributes, emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Inert `Deserialize` derive: accepts `#[serde(...)]` attributes, emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
