//! Test-runner plumbing: configuration and the deterministic RNG.

/// Per-`proptest!` block configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// FNV-1a over `bytes`; used to derive a per-test seed from the test path.
pub const fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x100000001b3);
        i += 1;
    }
    hash
}

/// The deterministic generator behind every strategy (SplitMix64).
///
/// The stream is a pure function of `(test seed, case index)`, so a failure
/// is reproducible by rerunning the same test binary.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for one test case.
    pub fn deterministic(seed: u64, case: u64) -> Self {
        Self { state: seed ^ case.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17) }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}
