//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This shim implements the subset of its API that the
//! workspace's property tests use — `proptest!`, `prop_assert!`/
//! `prop_assert_eq!`, `Strategy` with `prop_map`/`prop_flat_map`/
//! `prop_filter`, integer/float range strategies, tuple strategies, `Just`,
//! `any`, `prop::collection::vec` and `prop::bool::ANY` — driven by a
//! deterministic SplitMix64 generator.
//!
//! Differences from upstream, by design:
//!
//! - **No shrinking.** A failing case reports the panic directly; the values
//!   that produced it are reproducible because the per-test RNG stream is a
//!   pure function of the test name and case index.
//! - **Assertions panic** instead of returning `Result`, which is equivalent
//!   under the harness.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Namespaced strategy constructors (`prop::collection::vec`, `prop::bool::ANY`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{SizeBounds, Strategy, VecStrategy};

        /// A strategy producing `Vec`s of `element` with a length drawn from
        /// `size` (a `usize` for exact length, or a `Range<usize>`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeBounds>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        /// A strategy producing uniformly random booleans.
        #[derive(Clone, Copy, Debug)]
        pub struct BoolAny;

        /// The canonical boolean strategy.
        pub const ANY: BoolAny = BoolAny;

        impl crate::strategy::Strategy for BoolAny {
            type Value = bool;
            fn generate(&self, rng: &mut crate::test_runner::TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for `ProptestConfig::cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($config:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let __seed = $crate::test_runner::fnv1a(
                    concat!(module_path!(), "::", stringify!($name)).as_bytes(),
                );
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::deterministic(__seed, __case as u64);
                    $(let $pat =
                        $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u32, u32)> {
        (1u32..=16).prop_flat_map(|hi| (0..hi, Just(hi)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in -5i64..=5, f in 1.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((1.0..2.0).contains(&f));
        }

        #[test]
        fn flat_map_sees_intermediate((lo, hi) in pair()) {
            prop_assert!(lo < hi);
        }

        #[test]
        fn filter_holds(v in (0usize..10, 0usize..10).prop_filter("distinct", |(a, b)| a != b)) {
            prop_assert_ne!(v.0, v.1);
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u64..5, 2..6), w in prop::collection::vec(0u64..5, 3)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 3);
            for x in v.iter().chain(&w) {
                prop_assert!(*x < 5);
            }
        }

        #[test]
        fn map_applies(s in (0u32..9).prop_map(|x| x * 2)) {
            prop_assert_eq!(s % 2, 0);
            prop_assert!(s < 18);
        }

        #[test]
        fn bool_and_any(b in prop::bool::ANY, x in any::<u64>()) {
            // Smoke: both generate without panicking; use them so the
            // compiler keeps the bindings.
            let _ = (b, x);
        }
    }

    #[test]
    fn full_u64_inclusive_range_does_not_overflow() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut rng = TestRng::deterministic(1, 1);
        let _: u64 = (0u64..=u64::MAX).generate(&mut rng);
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = (0u64..1000, 0u64..1000);
        let a: Vec<(u64, u64)> =
            (0..10).map(|c| s.generate(&mut TestRng::deterministic(7, c))).collect();
        let b: Vec<(u64, u64)> =
            (0..10).map(|c| s.generate(&mut TestRng::deterministic(7, c))).collect();
        assert_eq!(a, b);
    }
}
