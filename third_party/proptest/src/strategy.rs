//! The `Strategy` trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Limit on regeneration attempts in [`Filter`] before giving up.
const MAX_FILTER_ATTEMPTS: usize = 10_000;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and draws from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Discards values failing the predicate, regenerating until one passes.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, whence, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_ATTEMPTS {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected {MAX_FILTER_ATTEMPTS} candidates", self.whence);
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "anything goes" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// See [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`, e.g. `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Length bounds for [`VecStrategy`]: an exact length or a half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeBounds {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeBounds {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeBounds {
    fn from(r: Range<usize>) -> Self {
        Self { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeBounds {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// See [`crate::prop::collection::vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeBounds,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = (self.size.lo..self.size.hi).generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
